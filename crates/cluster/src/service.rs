//! Open-loop service runner: streaming admission, bounded scheduler
//! memory, and a closed-loop replay differential.
//!
//! The batch entry points in [`crate::scenario`] materialize every job
//! up front and register every flow group with the scheduler before the
//! simulation starts — fine for a fixed experiment, unusable as a
//! service model where jobs arrive forever. This module runs the same
//! fluid simulation *open loop*:
//!
//! - a [`ServiceFeed`] pulls jobs lazily from a
//!   [`JobStream`] (one-job lookahead — the
//!   next arrival time is only known once the job is generated), parks
//!   arrivals whose pre-assigned hosts are busy in a bounded pending
//!   queue, and admits them in `(tenant tier, arrival)` order with
//!   backfill;
//! - a [`ServicePolicy`] wraps the scheduler and applies job
//!   [`Lifecycle`] events from a shared bus: flow groups are registered
//!   when their job is admitted and **evicted** when it retires, so the
//!   scheduler's book holds only live jobs, not every job ever seen;
//! - [`run_service`] drives either mode and returns per-job records, a
//!   completion digest, and the scheduler's peak book occupancy (the
//!   bounded-memory witness).
//!
//! # The eviction invariant
//!
//! Late registration and eager eviction must be *invisible*: the MADD
//! schedulers group only flows that are currently active, so a group
//! registered before its first flow releases, and evicted after its
//! last flow completes, can never change an allocation. The module's
//! differential check makes this executable —
//! [`ServiceMode::Streaming`] (lazy generation, incremental
//! register/evict) and [`ServiceMode::Materialized`] (same arrivals
//! pre-generated, every group registered up front, nothing ever
//! evicted) must produce bit-identical completion digests.

use crate::scenario::SchedulerKind;
use crate::workload::{JobStream, OpenLoopConfig, StreamJob};
use echelon_core::coflow::Coflow;
use echelon_core::echelon::EchelonFlow;
use echelon_core::{EchelonId, JobId};
use echelon_paradigms::dag::JobDag;
use echelon_paradigms::runtime::{run_jobs_streamed, JobFeed, RunResult};
use echelon_sched::baselines::{FifoPolicy, SrptPolicy};
use echelon_sched::echelon::EchelonMadd;
use echelon_sched::varys::VarysMadd;
use echelon_simnet::alloc::{AllocScratch, RateAlloc};
use echelon_simnet::fault::{FaultKind, FaultPlan};
use echelon_simnet::flow::ActiveFlowView;
use echelon_simnet::fluid::FlowDelta;
use echelon_simnet::ids::NodeId;
use echelon_simnet::runner::{AllocHorizon, MaxMinPolicy, RatePolicy, RecomputeMode};
use echelon_simnet::time::SimTime;
use echelon_simnet::topology::Topology;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;

/// Service-side knobs, orthogonal to the workload description.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum jobs parked waiting for hosts; arrivals beyond this are
    /// rejected (counted per tenant, never admitted).
    pub pending_limit: usize,
    /// Steady-state metrics ignore jobs finishing before this time.
    pub warmup: f64,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            pending_limit: usize::MAX,
            warmup: 0.0,
        }
    }
}

/// How [`run_service`] sources jobs and manages scheduler state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceMode {
    /// Lazy generation; flow groups registered on admission and evicted
    /// on retirement (the open-loop service proper).
    Streaming,
    /// All jobs pre-generated, every flow group registered up front,
    /// nothing evicted (the closed-loop replay reference).
    Materialized,
}

/// A job lifecycle event carried from the feed to the scheduler.
#[derive(Debug, Clone)]
pub enum Lifecycle {
    /// A job was admitted: its flow groups must be registered before
    /// the next allocation.
    Admitted {
        /// The job's §4 EchelonFlow groups.
        echelons: Vec<EchelonFlow>,
        /// The job's plain-Coflow groups.
        coflows: Vec<Coflow>,
    },
    /// A job retired (every unit finished): its groups can be evicted.
    Retired {
        /// Ids of the job's EchelonFlow groups.
        echelons: Vec<EchelonId>,
        /// Ids of the job's Coflow groups.
        coflows: Vec<EchelonId>,
    },
}

/// Shared queue between the [`ServiceFeed`] (producer) and the
/// [`ServicePolicy`] (consumer, drained at every allocation).
pub type LifecycleBus = Rc<RefCell<VecDeque<Lifecycle>>>;

/// What happened to one offered job, kept for post-run metrics.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job id.
    pub job: JobId,
    /// Index into the workload's tenant tiers.
    pub tenant: usize,
    /// Offered arrival time.
    pub arrival: f64,
    /// When the job's hosts freed up and it entered the cluster
    /// (`None`: rejected, or the run ended first).
    pub admitted_at: Option<f64>,
    /// When the job's last unit finished (`None`: never completed).
    pub finished_at: Option<f64>,
    /// True if the pending queue was full at arrival.
    pub rejected: bool,
    /// The job's EchelonFlow groups, retained for tardiness metrics
    /// after the scheduler has evicted them.
    pub echelons: Vec<EchelonFlow>,
}

/// A generated job waiting for its hosts to free.
struct PendingJob {
    dag: JobDag,
    hosts: Vec<NodeId>,
    tenant: usize,
    record: usize,
    echelon_ids: Vec<EchelonId>,
    coflow_ids: Vec<EchelonId>,
}

enum JobSourceIter {
    Stream(Box<JobStream>),
    Batch(std::vec::IntoIter<StreamJob>),
}

impl Iterator for JobSourceIter {
    type Item = StreamJob;
    fn next(&mut self) -> Option<StreamJob> {
        match self {
            JobSourceIter::Stream(s) => s.next(),
            JobSourceIter::Batch(b) => b.next(),
        }
    }
}

/// The open-loop admission gate: an incremental [`JobFeed`] over a job
/// stream with a bounded pending queue and tier-priority admission.
///
/// Both service modes run through this same gate — the only difference
/// is whether jobs are generated lazily and whether a [`LifecycleBus`]
/// carries register/evict events to the scheduler. That is what makes
/// the open≡closed differential meaningful: admission decisions are
/// shared by construction, so any divergence is the scheduler's.
pub struct ServiceFeed {
    jobs: JobSourceIter,
    /// One generated-but-not-yet-due job (the stream must be pulled to
    /// learn the next arrival time).
    lookahead: Option<StreamJob>,
    pending: Vec<PendingJob>,
    pending_limit: usize,
    records: Vec<JobRecord>,
    record_of: BTreeMap<JobId, usize>,
    /// Group ids of admitted, unfinished jobs, kept for the retirement
    /// event (the DAG itself is owned by the runtime once admitted).
    retire_ids: BTreeMap<JobId, (Vec<EchelonId>, Vec<EchelonId>)>,
    rejected_per_tenant: Vec<usize>,
    bus: Option<LifecycleBus>,
}

impl ServiceFeed {
    /// Streaming feed over `cfg`'s lazily generated job stream,
    /// publishing lifecycle events to `bus` when given one.
    pub fn streaming(
        cfg: OpenLoopConfig,
        service: &ServiceConfig,
        bus: Option<LifecycleBus>,
    ) -> ServiceFeed {
        let tenants = cfg.tenants.len();
        ServiceFeed::over(
            JobSourceIter::Stream(Box::new(JobStream::new(cfg))),
            tenants,
            service,
            bus,
        )
    }

    /// Replay feed over pre-generated jobs (no lifecycle events: the
    /// closed-loop reference registers everything up front).
    pub fn materialized(
        jobs: Vec<StreamJob>,
        tenants: usize,
        service: &ServiceConfig,
    ) -> ServiceFeed {
        ServiceFeed::over(
            JobSourceIter::Batch(jobs.into_iter()),
            tenants,
            service,
            None,
        )
    }

    fn over(
        mut jobs: JobSourceIter,
        tenants: usize,
        service: &ServiceConfig,
        bus: Option<LifecycleBus>,
    ) -> ServiceFeed {
        let lookahead = jobs.next();
        ServiceFeed {
            jobs,
            lookahead,
            pending: Vec::new(),
            pending_limit: service.pending_limit,
            records: Vec::new(),
            record_of: BTreeMap::new(),
            retire_ids: BTreeMap::new(),
            rejected_per_tenant: vec![0; tenants],
            bus,
        }
    }

    /// Per-job records in arrival order (complete once the run ends).
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Arrivals rejected because the pending queue was full, per tenant.
    pub fn rejected_per_tenant(&self) -> &[usize] {
        &self.rejected_per_tenant
    }

    fn consume(self) -> (Vec<JobRecord>, Vec<usize>) {
        (self.records, self.rejected_per_tenant)
    }

    /// Moves every due arrival from the stream into the pending queue,
    /// rejecting when it is full.
    fn pull_due(&mut self, now: SimTime) {
        while self
            .lookahead
            .as_ref()
            .is_some_and(|j| SimTime::new(j.arrival).at_or_before(now))
        {
            let job = self.lookahead.take().expect("checked above");
            self.lookahead = self.jobs.next();
            let rejected = self.pending.len() >= self.pending_limit;
            let record = self.records.len();
            self.record_of.insert(job.dag.job, record);
            self.records.push(JobRecord {
                job: job.dag.job,
                tenant: job.tenant,
                arrival: job.arrival,
                admitted_at: None,
                finished_at: None,
                rejected,
                echelons: job.dag.echelons.clone(),
            });
            if rejected {
                self.rejected_per_tenant[job.tenant] += 1;
                continue;
            }
            let echelon_ids = job.dag.echelons.iter().map(|h| h.id()).collect();
            let coflow_ids = job.dag.coflows.iter().map(|c| c.id()).collect();
            self.pending.push(PendingJob {
                dag: job.dag,
                hosts: job.hosts,
                tenant: job.tenant,
                record,
                echelon_ids,
                coflow_ids,
            });
        }
    }
}

impl JobFeed for ServiceFeed {
    fn next_event_at(&self) -> Option<SimTime> {
        self.lookahead.as_ref().map(|j| SimTime::new(j.arrival))
    }

    fn admit(&mut self, now: SimTime, claimed: &BTreeSet<NodeId>) -> Vec<JobDag> {
        self.pull_due(now);
        // Admission scan: tier priority first (lower tenant index = higher
        // tier), arrival order within a tier; a blocked job does not block
        // later admissible ones (backfill).
        let mut order: Vec<usize> = (0..self.pending.len()).collect();
        order.sort_by_key(|&i| (self.pending[i].tenant, self.pending[i].record));
        let mut newly: BTreeSet<NodeId> = BTreeSet::new();
        let mut take: Vec<usize> = Vec::new();
        for &i in &order {
            let p = &self.pending[i];
            if p.hosts
                .iter()
                .all(|h| !claimed.contains(h) && !newly.contains(h))
            {
                newly.extend(p.hosts.iter().copied());
                take.push(i);
            }
        }
        if take.is_empty() {
            return Vec::new();
        }
        let taken: BTreeSet<usize> = take.iter().copied().collect();
        let mut extracted: BTreeMap<usize, PendingJob> = BTreeMap::new();
        let mut kept = Vec::with_capacity(self.pending.len() - take.len());
        for (i, p) in std::mem::take(&mut self.pending).into_iter().enumerate() {
            if taken.contains(&i) {
                extracted.insert(i, p);
            } else {
                kept.push(p);
            }
        }
        self.pending = kept;
        let mut out = Vec::with_capacity(take.len());
        for i in take {
            let p = extracted.remove(&i).expect("index extracted above");
            self.records[p.record].admitted_at = Some(now.secs());
            if let Some(bus) = &self.bus {
                bus.borrow_mut().push_back(Lifecycle::Admitted {
                    echelons: p.dag.echelons.clone(),
                    coflows: p.dag.coflows.clone(),
                });
            }
            self.retire_ids
                .insert(p.dag.job, (p.echelon_ids, p.coflow_ids));
            out.push(p.dag);
        }
        out
    }

    fn on_job_retired(&mut self, now: SimTime, job: JobId) {
        if let Some(&r) = self.record_of.get(&job) {
            self.records[r].finished_at = Some(now.secs());
        }
        let ids = self.retire_ids.remove(&job);
        if let Some(bus) = &self.bus {
            if let Some((echelons, coflows)) = ids {
                bus.borrow_mut()
                    .push_back(Lifecycle::Retired { echelons, coflows });
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.lookahead.is_none() && self.pending.is_empty()
    }

    fn backlog(&self) -> usize {
        self.pending.len()
    }
}

enum Engine {
    Echelon(EchelonMadd),
    Coflow(VarysMadd),
    Plain(Box<dyn RatePolicy>),
}

/// Scheduler wrapper for service runs: drains the [`LifecycleBus`]
/// before every allocation, registering admitted groups and evicting
/// retired ones, then delegates to the wrapped engine.
///
/// Per-flow baselines (fair/FIFO/SRPT) keep no group state and simply
/// ignore lifecycle events.
pub struct ServicePolicy {
    engine: Engine,
    bus: Option<LifecycleBus>,
    /// Retirements seen on the bus, applied *after* the next delegation:
    /// the engine's incremental caches drop a group's members while the
    /// departure delta is applied, which needs the flow→group mapping —
    /// i.e. the book entry — still alive. Evicting a flowless group
    /// after the allocation is equally allocation-neutral.
    pending_evictions: Vec<(Vec<EchelonId>, Vec<EchelonId>)>,
}

impl ServicePolicy {
    /// Open-loop wrapper for `kind`: group schedulers start *empty* and
    /// learn their groups through `bus`.
    pub fn open(kind: SchedulerKind, bus: LifecycleBus) -> ServicePolicy {
        let engine = match kind {
            SchedulerKind::Echelon => Engine::Echelon(EchelonMadd::new(Vec::new())),
            SchedulerKind::Coflow => Engine::Coflow(VarysMadd::new(Vec::new())),
            SchedulerKind::Fair => Engine::Plain(Box::new(MaxMinPolicy)),
            SchedulerKind::Fifo => Engine::Plain(Box::new(FifoPolicy)),
            SchedulerKind::Srpt => Engine::Plain(Box::new(SrptPolicy)),
        };
        ServicePolicy {
            engine,
            bus: Some(bus),
            pending_evictions: Vec::new(),
        }
    }

    /// Closed-loop reference for `kind`: every group of every job
    /// registered up front, no bus, nothing ever evicted.
    pub fn closed(kind: SchedulerKind, jobs: &[StreamJob]) -> ServicePolicy {
        let engine = match kind {
            SchedulerKind::Echelon => Engine::Echelon(EchelonMadd::new(
                jobs.iter()
                    .flat_map(|j| j.dag.echelons.iter().cloned())
                    .collect(),
            )),
            SchedulerKind::Coflow => Engine::Coflow(VarysMadd::new(
                jobs.iter()
                    .flat_map(|j| j.dag.coflows.iter().cloned())
                    .collect(),
            )),
            SchedulerKind::Fair => Engine::Plain(Box::new(MaxMinPolicy)),
            SchedulerKind::Fifo => Engine::Plain(Box::new(FifoPolicy)),
            SchedulerKind::Srpt => Engine::Plain(Box::new(SrptPolicy)),
        };
        ServicePolicy {
            engine,
            bus: None,
            pending_evictions: Vec::new(),
        }
    }

    /// Pre-delegation half of the bus drain: registers admitted groups
    /// (they must exist before their flows' arrival deltas are applied)
    /// and parks retirements for [`Self::apply_evictions`].
    fn apply_admissions(&mut self) {
        let Some(bus) = &self.bus else { return };
        let mut queue = bus.borrow_mut();
        while let Some(event) = queue.pop_front() {
            match event {
                Lifecycle::Admitted { echelons, coflows } => match &mut self.engine {
                    Engine::Echelon(e) => echelons.into_iter().for_each(|h| e.register(h)),
                    Engine::Coflow(v) => coflows.into_iter().for_each(|c| v.register(c)),
                    Engine::Plain(_) => {}
                },
                Lifecycle::Retired { echelons, coflows } => {
                    self.pending_evictions.push((echelons, coflows));
                }
            }
        }
    }

    /// Post-delegation half: evicts groups whose jobs retired. Runs after
    /// the engine has applied the departure delta of the group's last
    /// flows, so its incremental caches are already clean.
    fn apply_evictions(&mut self, active: &[ActiveFlowView]) {
        for (echelons, coflows) in std::mem::take(&mut self.pending_evictions) {
            match &mut self.engine {
                Engine::Echelon(e) => {
                    for id in echelons {
                        assert!(e.evict(id, active), "evicting retired {id:?} refused");
                    }
                }
                Engine::Coflow(v) => {
                    for id in coflows {
                        assert!(v.evict(id, active), "evicting retired {id:?} refused");
                    }
                }
                Engine::Plain(_) => {}
            }
        }
    }

    fn engine_mut(&mut self) -> &mut dyn RatePolicy {
        match &mut self.engine {
            Engine::Echelon(e) => e,
            Engine::Coflow(v) => v,
            Engine::Plain(p) => p.as_mut(),
        }
    }

    fn engine_ref(&self) -> &dyn RatePolicy {
        match &self.engine {
            Engine::Echelon(e) => e,
            Engine::Coflow(v) => v,
            Engine::Plain(p) => p.as_ref(),
        }
    }
}

impl RatePolicy for ServicePolicy {
    fn allocate(&mut self, now: SimTime, flows: &[ActiveFlowView], topo: &Topology) -> RateAlloc {
        self.apply_admissions();
        let alloc = self.engine_mut().allocate(now, flows, topo);
        self.apply_evictions(flows);
        alloc
    }

    fn allocate_incremental(
        &mut self,
        now: SimTime,
        flows: &[ActiveFlowView],
        delta: &FlowDelta,
        topo: &Topology,
    ) -> RateAlloc {
        self.apply_admissions();
        let alloc = self
            .engine_mut()
            .allocate_incremental(now, flows, delta, topo);
        self.apply_evictions(flows);
        alloc
    }

    fn allocate_dense(
        &mut self,
        now: SimTime,
        flows: &[ActiveFlowView],
        topo: &Topology,
        ws: &mut AllocScratch,
        out: &mut Vec<f64>,
    ) {
        self.apply_admissions();
        self.engine_mut().allocate_dense(now, flows, topo, ws, out);
        self.apply_evictions(flows);
    }

    fn allocate_dense_incremental(
        &mut self,
        now: SimTime,
        flows: &[ActiveFlowView],
        delta: &FlowDelta,
        topo: &Topology,
        ws: &mut AllocScratch,
        out: &mut Vec<f64>,
    ) {
        self.apply_admissions();
        self.engine_mut()
            .allocate_dense_incremental(now, flows, delta, topo, ws, out);
        self.apply_evictions(flows);
    }

    fn horizon(&self, now: SimTime, flows: &[ActiveFlowView], rates: &[f64]) -> AllocHorizon {
        self.engine_ref().horizon(now, flows, rates)
    }

    fn on_fault(&mut self, now: SimTime, fault: &FaultKind) {
        self.engine_mut().on_fault(now, fault)
    }

    fn name(&self) -> &'static str {
        self.engine_ref().name()
    }

    fn pod_stats(&self) -> Option<(usize, usize)> {
        self.engine_ref().pod_stats()
    }

    fn book_stats(&self) -> Option<(usize, usize)> {
        self.engine_ref().book_stats()
    }
}

/// Everything one service run produces.
#[derive(Debug)]
pub struct ServiceOutcome {
    /// The raw simulation trace.
    pub result: RunResult,
    /// One record per offered job, in arrival order.
    pub records: Vec<JobRecord>,
    /// Arrivals rejected at the full pending queue, per tenant.
    pub rejected_per_tenant: Vec<usize>,
    /// Scheduler book high-water mark (0 for bookless baselines). With
    /// eviction this tracks *concurrently live* groups, not the stream
    /// length — the bounded-memory witness.
    pub peak_book_occupancy: usize,
    /// Order-insensitive FNV-1a digest over flow finishes and job
    /// makespans; equal digests mean bit-identical completions.
    pub digest: u64,
}

/// FNV-1a digest over a run's flow finish times and job makespans.
/// Streaming and materialized runs of the same workload must agree.
pub fn completion_digest(result: &RunResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mix = |h: &mut u64, x: u64| {
        *h ^= x;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for (id, t) in &result.flow_finishes {
        mix(&mut h, id.0);
        mix(&mut h, t.secs().to_bits());
    }
    for (job, t) in &result.job_makespans {
        mix(&mut h, u64::from(job.0));
        mix(&mut h, t.secs().to_bits());
    }
    h
}

/// Runs `cfg`'s job stream as a service on `topo` under `kind`, in the
/// given [`ServiceMode`], and returns the trace plus per-job records.
///
/// Streaming and materialized invocations with identical arguments
/// produce bit-identical [`ServiceOutcome::digest`]s — the open≡closed
/// differential that certifies admission gating and group eviction
/// change no allocation decision.
pub fn run_service(
    topo: &Topology,
    cfg: &OpenLoopConfig,
    service: &ServiceConfig,
    kind: SchedulerKind,
    mode: RecomputeMode,
    plan: &FaultPlan,
    service_mode: ServiceMode,
) -> ServiceOutcome {
    let (result, records, rejected_per_tenant, peak) = match service_mode {
        ServiceMode::Streaming => {
            let bus: LifecycleBus = Rc::new(RefCell::new(VecDeque::new()));
            let mut feed = ServiceFeed::streaming(cfg.clone(), service, Some(bus.clone()));
            let mut policy = ServicePolicy::open(kind, bus);
            let result = run_jobs_streamed(topo, &mut feed, &mut policy, mode, plan);
            let peak = policy.book_stats().map_or(0, |(_, p)| p);
            let (records, rejected) = feed.consume();
            (result, records, rejected, peak)
        }
        ServiceMode::Materialized => {
            let jobs: Vec<StreamJob> = JobStream::new(cfg.clone()).collect();
            let mut policy = ServicePolicy::closed(kind, &jobs);
            let mut feed = ServiceFeed::materialized(jobs, cfg.tenants.len(), service);
            let result = run_jobs_streamed(topo, &mut feed, &mut policy, mode, plan);
            let peak = policy.book_stats().map_or(0, |(_, p)| p);
            let (records, rejected) = feed.consume();
            (result, records, rejected, peak)
        }
    };
    let digest = completion_digest(&result);
    ServiceOutcome {
        result,
        records,
        rejected_per_tenant,
        peak_book_occupancy: peak,
        digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::ParadigmKind;

    fn topo(hosts: usize) -> Topology {
        Topology::big_switch_uniform(hosts, 1.0)
    }

    fn cfg(seed: u64, jobs: usize, hosts: usize, mean_ia: f64) -> OpenLoopConfig {
        OpenLoopConfig::default_tiers(seed, jobs, hosts, mean_ia)
    }

    fn run(
        c: &OpenLoopConfig,
        hosts: usize,
        kind: SchedulerKind,
        mode: RecomputeMode,
        sm: ServiceMode,
    ) -> ServiceOutcome {
        run_service(
            &topo(hosts),
            c,
            &ServiceConfig::default(),
            kind,
            mode,
            &FaultPlan::new(Vec::new()),
            sm,
        )
    }

    /// A unit-less job claiming `hosts`: admitted, it retires instantly.
    fn bare_job(id: u32, hosts: Vec<NodeId>, arrival: f64, tenant: usize) -> StreamJob {
        StreamJob {
            dag: JobDag {
                job: JobId(id),
                comps: BTreeMap::new(),
                comms: BTreeMap::new(),
                programs: hosts.iter().map(|h| (*h, Vec::new())).collect(),
                echelons: Vec::new(),
                coflows: Vec::new(),
            },
            kind: ParadigmKind::DpAllReduce,
            arrival,
            tenant,
            hosts,
        }
    }

    #[test]
    fn open_equals_closed_bitwise_for_all_schedulers() {
        let c = cfg(7, 12, 8, 0.8);
        for kind in SchedulerKind::ALL {
            let open = run(&c, 8, kind, RecomputeMode::Full, ServiceMode::Streaming);
            let closed = run(&c, 8, kind, RecomputeMode::Full, ServiceMode::Materialized);
            assert_eq!(
                open.digest,
                closed.digest,
                "digest diverged for {}",
                kind.name()
            );
            assert_eq!(
                open.result.flow_finishes,
                closed.result.flow_finishes,
                "flow finishes diverged for {}",
                kind.name()
            );
            assert_eq!(
                open.result.job_makespans,
                closed.result.job_makespans,
                "makespans diverged for {}",
                kind.name()
            );
        }
    }

    #[test]
    fn streaming_incremental_matches_full() {
        let c = cfg(11, 10, 8, 0.6);
        for kind in [SchedulerKind::Echelon, SchedulerKind::Coflow] {
            let full = run(&c, 8, kind, RecomputeMode::Full, ServiceMode::Streaming);
            let inc = run(
                &c,
                8,
                kind,
                RecomputeMode::Incremental,
                ServiceMode::Streaming,
            );
            assert_eq!(
                full.digest,
                inc.digest,
                "incremental diverged for {}",
                kind.name()
            );
        }
    }

    #[test]
    fn eviction_bounds_book_occupancy() {
        let c = cfg(3, 60, 8, 0.2);
        let open = run(
            &c,
            8,
            SchedulerKind::Echelon,
            RecomputeMode::Full,
            ServiceMode::Streaming,
        );
        let closed = run(
            &c,
            8,
            SchedulerKind::Echelon,
            RecomputeMode::Full,
            ServiceMode::Materialized,
        );
        let total: usize = open.records.iter().map(|r| r.echelons.len()).sum();
        assert!(open.peak_book_occupancy > 0);
        assert!(
            open.peak_book_occupancy < total / 2,
            "peak {} should be far below the stream's {} groups",
            open.peak_book_occupancy,
            total
        );
        // The closed-loop reference registers everything up front: its
        // peak IS the stream size. Same completions regardless.
        assert_eq!(closed.peak_book_occupancy, total);
        assert_eq!(open.digest, closed.digest);
    }

    #[test]
    fn every_offered_job_finishes() {
        let c = cfg(5, 20, 8, 0.5);
        let out = run(
            &c,
            8,
            SchedulerKind::Echelon,
            RecomputeMode::Full,
            ServiceMode::Streaming,
        );
        assert_eq!(out.records.len(), 20);
        for r in &out.records {
            assert!(!r.rejected);
            let adm = r.admitted_at.expect("admitted");
            let fin = r.finished_at.expect("finished");
            assert!(adm >= r.arrival);
            assert!(fin >= adm);
        }
    }

    #[test]
    fn boundary_arrival_admitted_at_exact_now() {
        let jobs = vec![bare_job(0, vec![NodeId(0)], 1.5, 0)];
        let mut feed = ServiceFeed::materialized(jobs, 1, &ServiceConfig::default());
        assert!(feed.admit(SimTime::new(1.0), &BTreeSet::new()).is_empty());
        let out = feed.admit(SimTime::new(1.5), &BTreeSet::new());
        assert_eq!(
            out.len(),
            1,
            "arrival == now sits inside the admission boundary"
        );
        assert_eq!(feed.records()[0].admitted_at, Some(1.5));
    }

    #[test]
    fn full_pending_queue_rejects_and_counts() {
        let jobs = vec![
            bare_job(0, vec![NodeId(0)], 0.0, 0),
            bare_job(1, vec![NodeId(0)], 0.0, 1),
            bare_job(2, vec![NodeId(0)], 0.0, 1),
        ];
        let svc = ServiceConfig {
            pending_limit: 1,
            ..ServiceConfig::default()
        };
        let mut feed = ServiceFeed::materialized(jobs, 2, &svc);
        let busy: BTreeSet<NodeId> = [NodeId(0)].into();
        assert!(feed.admit(SimTime::new(0.0), &busy).is_empty());
        assert_eq!(feed.rejected_per_tenant(), &[0, 2]);
        assert!(feed.records()[1].rejected && feed.records()[2].rejected);
        // The surviving job admits once the host frees.
        let out = feed.admit(SimTime::new(1.0), &BTreeSet::new());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].job, JobId(0));
        assert!(feed.exhausted());
    }

    #[test]
    fn higher_tier_preempts_admission_order() {
        // Tenant 1 arrived first, tenant 0 (higher tier) later; both need
        // host 0 — the tier wins the scan.
        let jobs = vec![
            bare_job(0, vec![NodeId(0)], 0.0, 1),
            bare_job(1, vec![NodeId(0)], 0.5, 0),
        ];
        let mut feed = ServiceFeed::materialized(jobs, 2, &ServiceConfig::default());
        let busy: BTreeSet<NodeId> = [NodeId(0)].into();
        assert!(feed.admit(SimTime::new(0.0), &busy).is_empty());
        assert!(feed.admit(SimTime::new(0.5), &busy).is_empty());
        let out = feed.admit(SimTime::new(1.0), &BTreeSet::new());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].job, JobId(1), "higher tier admitted first");
        assert_eq!(feed.backlog(), 1);
    }

    #[test]
    fn blocked_job_does_not_block_backfill() {
        let jobs = vec![
            bare_job(0, vec![NodeId(0)], 0.0, 0),
            bare_job(1, vec![NodeId(1)], 0.0, 0),
        ];
        let mut feed = ServiceFeed::materialized(jobs, 1, &ServiceConfig::default());
        let busy: BTreeSet<NodeId> = [NodeId(0)].into();
        let out = feed.admit(SimTime::new(0.0), &busy);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].job,
            JobId(1),
            "job on free host backfills past the blocked one"
        );
    }

    #[test]
    fn zero_unit_job_retires_at_admission() {
        let jobs = vec![bare_job(4, vec![NodeId(2)], 0.25, 0)];
        let mut feed = ServiceFeed::materialized(jobs, 1, &ServiceConfig::default());
        let mut policy = ServicePolicy::closed(SchedulerKind::Fair, &[]);
        let result = run_jobs_streamed(
            &topo(4),
            &mut feed,
            &mut policy,
            RecomputeMode::Full,
            &FaultPlan::new(Vec::new()),
        );
        assert_eq!(
            result.job_makespans.get(&JobId(4)),
            Some(&SimTime::new(0.25))
        );
        assert_eq!(feed.records()[0].finished_at, Some(0.25));
    }
}
