//! GPU placement policies.
//!
//! Multi-tenant clusters fragment: a job's workers are often not
//! contiguous, which spreads its flows across more of the fabric and
//! increases contention with other jobs. Placement assigns each job a
//! disjoint set of hosts under one of two policies.

use echelon_detrand::DetRng;
use echelon_simnet::ids::NodeId;

/// How jobs' workers map onto hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Contiguous host blocks in arrival order (dedicated-cluster ideal).
    Packed,
    /// Hosts assigned from a seeded random permutation (the fragmented
    /// multi-tenant reality).
    Scattered {
        /// Shuffle seed (kept separate from the workload seed so the two
        /// can vary independently).
        seed: u64,
    },
}

/// Allocates disjoint host sets for jobs needing `demands[i]` hosts each.
///
/// Returns one host list per job, in job order.
///
/// # Panics
///
/// Panics if the total demand exceeds `hosts`.
pub fn place_jobs(policy: PlacementPolicy, hosts: usize, demands: &[usize]) -> Vec<Vec<NodeId>> {
    let total: usize = demands.iter().sum();
    assert!(
        total <= hosts,
        "placement needs {total} hosts but the cluster has {hosts}"
    );
    let pool: Vec<NodeId> = match policy {
        PlacementPolicy::Packed => (0..hosts as u32).map(NodeId).collect(),
        PlacementPolicy::Scattered { seed } => {
            let mut pool: Vec<NodeId> = (0..hosts as u32).map(NodeId).collect();
            DetRng::seed_from_u64(seed).shuffle(&mut pool);
            pool
        }
    };
    let mut out = Vec::with_capacity(demands.len());
    let mut cursor = 0;
    for &d in demands {
        out.push(pool[cursor..cursor + d].to_vec());
        cursor += d;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_is_contiguous() {
        let placed = place_jobs(PlacementPolicy::Packed, 8, &[3, 2]);
        assert_eq!(placed[0], vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(placed[1], vec![NodeId(3), NodeId(4)]);
    }

    #[test]
    fn scattered_is_deterministic_per_seed() {
        let a = place_jobs(PlacementPolicy::Scattered { seed: 7 }, 8, &[3, 2]);
        let b = place_jobs(PlacementPolicy::Scattered { seed: 7 }, 8, &[3, 2]);
        assert_eq!(a, b);
        let c = place_jobs(PlacementPolicy::Scattered { seed: 8 }, 8, &[3, 2]);
        assert_ne!(a, c);
    }

    #[test]
    fn placements_are_disjoint() {
        let placed = place_jobs(PlacementPolicy::Scattered { seed: 1 }, 10, &[4, 3, 3]);
        let mut all: Vec<NodeId> = placed.into_iter().flatten().collect();
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), before);
    }

    #[test]
    #[should_panic(expected = "placement needs")]
    fn overcommit_rejected() {
        let _ = place_jobs(PlacementPolicy::Packed, 4, &[3, 2]);
    }
}
