//! Post-hoc measurement of cluster runs.
//!
//! The runtime records raw spans; this module turns them into the
//! quantities the paper's objective and evaluation talk about: per-job
//! completion time, per-EchelonFlow tardiness (Eq. 2, with the reference
//! time reconstructed from the head flow's observed release — exactly
//! Definition 3.1's `r = s_0`), the global objective (Eq. 4), and worker
//! idleness.

use crate::service::JobRecord;
use crate::workload::{GeneratedJob, TenantSpec, ARRIVAL_LABEL};
use echelon_core::echelon::EchelonFlow;
use echelon_core::JobId;
use echelon_paradigms::runtime::RunResult;
use echelon_simnet::time::SimTime;
use std::collections::BTreeMap;

/// Nearest-rank percentile over an ascending-sorted slice: the smallest
/// element with at least `p` of the mass at or below it. `p` in `[0, 1]`;
/// an empty slice reports 0 (by convention, not interpolation).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "percentile {p} outside [0, 1]");
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[idx.clamp(1, sorted.len()) - 1]
}

/// Computes an EchelonFlow's realized tardiness (Eq. 2) from a finished
/// run: the reference time is the earliest release among its flows and
/// every flow's tardiness is its finish minus its stage's ideal finish.
///
/// Returns `None` if any member flow never ran (job did not finish).
pub fn echelon_tardiness_from_run(h: &EchelonFlow, run: &RunResult) -> Option<f64> {
    let mut bound = h.clone();
    let reference = h
        .flows()
        .filter_map(|f| run.flow_releases.get(&f.id))
        .copied()
        .fold(SimTime::INFINITY, SimTime::min);
    if !reference.is_finite() {
        return None;
    }
    bound.bind_reference(reference);
    let mut worst = f64::NEG_INFINITY;
    for j in 0..bound.num_stages() {
        let d = bound.ideal_finish_of_stage(j);
        for f in bound.stage(j) {
            let e = run.flow_finishes.get(&f.id)?;
            worst = worst.max(*e - d);
        }
    }
    Some(worst)
}

/// Per-job summary.
#[derive(Debug, Clone)]
pub struct JobMetrics {
    /// The job.
    pub job: JobId,
    /// Arrival time.
    pub arrival: f64,
    /// Completion time of the job's last unit.
    pub finish: f64,
    /// Job completion time: `finish − arrival`.
    pub jct: f64,
    /// Sum over the job's EchelonFlows of clamped tardiness (Eq. 4
    /// restricted to the job).
    pub sum_tardiness: f64,
}

/// Whole-scenario summary.
#[derive(Debug, Clone)]
pub struct ScenarioMetrics {
    /// Per-job breakdown, in job order.
    pub jobs: Vec<JobMetrics>,
    /// Eq. 4 over every EchelonFlow of every job.
    pub total_tardiness: f64,
    /// Mean JCT.
    pub mean_jct: f64,
    /// 95th-percentile JCT (nearest-rank).
    pub p95_jct: f64,
    /// Completion time of the whole scenario.
    pub makespan: f64,
    /// Mean worker compute utilization over `[arrival of first job,
    /// makespan]`, excluding arrival gates.
    pub mean_utilization: f64,
}

/// Builds scenario metrics from generated jobs and their run.
pub fn scenario_metrics(jobs: &[GeneratedJob], run: &RunResult) -> ScenarioMetrics {
    let mut out_jobs = Vec::with_capacity(jobs.len());
    let mut total_tardiness = 0.0;
    for j in jobs {
        let finish = run
            .job_makespans
            .get(&j.dag.job)
            .copied()
            .unwrap_or(SimTime::ZERO)
            .secs();
        let sum_tardiness: f64 = j
            .dag
            .echelons
            .iter()
            .filter_map(|h| echelon_tardiness_from_run(h, run))
            .map(|t| t.max(0.0) * 1.0)
            .sum();
        total_tardiness += sum_tardiness;
        out_jobs.push(JobMetrics {
            job: j.dag.job,
            arrival: j.arrival,
            finish,
            jct: finish - j.arrival,
            sum_tardiness,
        });
    }

    let mut jcts: Vec<f64> = out_jobs.iter().map(|m| m.jct).collect();
    jcts.sort_by(f64::total_cmp);
    let mean_jct = if jcts.is_empty() {
        0.0
    } else {
        jcts.iter().sum::<f64>() / jcts.len() as f64
    };
    let p95_jct = percentile(&jcts, 0.95);

    // Utilization: compute seconds (excluding arrival gates) over the
    // per-worker active window.
    let mut gate_time: BTreeMap<_, f64> = BTreeMap::new();
    for e in &run.timeline {
        if e.label == ARRIVAL_LABEL {
            *gate_time.entry(e.worker).or_insert(0.0) += e.end - e.start;
        }
    }
    let span = run.makespan.secs();
    // Average over every *placed* worker, not just those that recorded
    // busy time: a host that sat idle the whole run (no finished compute
    // unit) is absent from `worker_busy`, and skipping it biased the mean
    // upward — a scheduler that starves half the cluster looked as
    // utilized as one that keeps every host busy.
    let mut placed: Vec<_> = jobs
        .iter()
        .flat_map(|j| j.placement.iter().copied())
        .chain(run.worker_busy.keys().copied())
        .collect();
    placed.sort();
    placed.dedup();
    let mut utils = Vec::new();
    for worker in &placed {
        let busy = run.worker_busy.get(worker).copied().unwrap_or(0.0);
        let gates = gate_time.get(worker).copied().unwrap_or(0.0);
        if span > 0.0 {
            utils.push(((busy - gates) / span).clamp(0.0, 1.0));
        }
    }
    let mean_utilization = if utils.is_empty() {
        0.0
    } else {
        utils.iter().sum::<f64>() / utils.len() as f64
    };

    ScenarioMetrics {
        jobs: out_jobs,
        total_tardiness,
        mean_jct,
        p95_jct,
        makespan: span,
        mean_utilization,
    }
}

/// One tenant tier's slice of the steady state.
#[derive(Debug, Clone)]
pub struct TenantSteadyState {
    /// Tier name (from [`TenantSpec::name`]).
    pub name: String,
    /// Jobs of this tier finishing after warmup.
    pub completed: usize,
    /// Arrivals of this tier rejected at the full pending queue.
    pub rejected: usize,
    /// Completed jobs whose summed tardiness exceeded the tier's SLO.
    pub slo_violations: usize,
    /// `slo_violations / completed` (0 when nothing completed, and
    /// always 0 for a tier with no SLO).
    pub violation_rate: f64,
    /// 99th-percentile JCT within the tier.
    pub p99_jct: f64,
}

/// Service-level metrics over an open-loop run, measured past warmup.
#[derive(Debug, Clone)]
pub struct SteadyStateMetrics {
    /// Warmup cutoff used: jobs finishing at or before it are excluded.
    pub warmup: f64,
    /// Jobs completing after warmup.
    pub completed: usize,
    /// Completions per unit time over `(warmup, makespan]`.
    pub throughput: f64,
    /// Median JCT.
    pub p50_jct: f64,
    /// 99th-percentile JCT (nearest-rank).
    pub p99_jct: f64,
    /// Median per-job summed tardiness (Eq. 4 restricted to the job).
    pub p50_tardiness: f64,
    /// 99th-percentile per-job summed tardiness.
    pub p99_tardiness: f64,
    /// Per-tenant breakdown, in tier order.
    pub tenants: Vec<TenantSteadyState>,
}

/// Summed, clamped EchelonFlow tardiness of one finished job (Eq. 4
/// restricted to the job), from its retained groups.
fn job_tardiness(rec: &JobRecord, run: &RunResult) -> f64 {
    rec.echelons
        .iter()
        .filter_map(|h| echelon_tardiness_from_run(h, run))
        .map(|t| t.max(0.0))
        .sum()
}

/// Distills a service run's [`JobRecord`]s into steady-state SLO
/// metrics: throughput, JCT and tardiness percentiles, and per-tenant
/// SLO-violation rates, all over jobs finishing *after* `warmup` (the
/// ramp-up transient, where the cluster is still filling, would bias
/// every percentile down).
pub fn steady_state_metrics(
    records: &[JobRecord],
    run: &RunResult,
    tenants: &[TenantSpec],
    warmup: f64,
) -> SteadyStateMetrics {
    let mut jcts = Vec::new();
    let mut tards = Vec::new();
    let mut per_tenant: Vec<(usize, usize, Vec<f64>)> = vec![(0, 0, Vec::new()); tenants.len()];
    for rec in records {
        if rec.rejected {
            per_tenant[rec.tenant].1 += 1;
            continue;
        }
        let Some(finish) = rec.finished_at else {
            continue;
        };
        if finish <= warmup {
            continue;
        }
        let jct = finish - rec.arrival;
        let tardiness = job_tardiness(rec, run);
        jcts.push(jct);
        tards.push(tardiness);
        let slot = &mut per_tenant[rec.tenant];
        slot.2.push(jct);
        if tenants[rec.tenant]
            .slo_tardiness
            .is_some_and(|slo| tardiness > slo)
        {
            slot.0 += 1;
        }
    }
    jcts.sort_by(f64::total_cmp);
    tards.sort_by(f64::total_cmp);
    let completed = jcts.len();
    let window = run.makespan.secs() - warmup;
    let throughput = if window > 0.0 {
        completed as f64 / window
    } else {
        0.0
    };
    let tenants_out = tenants
        .iter()
        .zip(per_tenant)
        .map(|(spec, (violations, rejected, mut tier_jcts))| {
            tier_jcts.sort_by(f64::total_cmp);
            let completed = tier_jcts.len();
            TenantSteadyState {
                name: spec.name.clone(),
                completed,
                rejected,
                slo_violations: violations,
                violation_rate: if completed > 0 {
                    violations as f64 / completed as f64
                } else {
                    0.0
                },
                p99_jct: percentile(&tier_jcts, 0.99),
            }
        })
        .collect();
    SteadyStateMetrics {
        warmup,
        completed,
        throughput,
        p50_jct: percentile(&jcts, 0.5),
        p99_jct: percentile(&jcts, 0.99),
        p50_tardiness: percentile(&tards, 0.5),
        p99_tardiness: percentile(&tards, 0.99),
        tenants: tenants_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_workload, WorkloadConfig};
    use echelon_paradigms::ids::IdAlloc;
    use echelon_paradigms::runtime::run_jobs;
    use echelon_simnet::runner::MaxMinPolicy;
    use echelon_simnet::topology::Topology;

    fn run_small() -> (Vec<crate::workload::GeneratedJob>, RunResult) {
        let cfg = WorkloadConfig::default_mix(5, 3, 16);
        let mut alloc = IdAlloc::new();
        let jobs = generate_workload(&cfg, &mut alloc);
        let topo = Topology::big_switch_uniform(16, 1.0);
        let dags: Vec<&_> = jobs.iter().map(|j| &j.dag).collect();
        let run = run_jobs(&topo, &dags, &mut MaxMinPolicy);
        (jobs, run)
    }

    #[test]
    fn jct_is_finish_minus_arrival() {
        let (jobs, run) = run_small();
        let m = scenario_metrics(&jobs, &run);
        assert_eq!(m.jobs.len(), 3);
        for jm in &m.jobs {
            assert!(jm.jct > 0.0, "job {:?} has non-positive JCT", jm.job);
            assert!((jm.finish - jm.arrival - jm.jct).abs() < 1e-9);
        }
        assert!(m.mean_jct > 0.0);
        assert!(m.p95_jct >= m.mean_jct * 0.5);
        assert!(m.makespan >= m.jobs.iter().map(|j| j.finish).fold(0.0, f64::max) - 1e-9);
    }

    #[test]
    fn tardiness_is_reconstructed() {
        let (jobs, run) = run_small();
        let m = scenario_metrics(&jobs, &run);
        // Under plain fair sharing in a shared cluster, some EchelonFlow
        // is late (positive total tardiness) unless everything is
        // perfectly uncontended — either way the metric is finite.
        assert!(m.total_tardiness.is_finite());
        assert!(m.total_tardiness >= 0.0);
    }

    #[test]
    fn utilization_in_unit_range() {
        let (jobs, run) = run_small();
        let m = scenario_metrics(&jobs, &run);
        assert!(m.mean_utilization > 0.0);
        assert!(m.mean_utilization <= 1.0);
    }

    #[test]
    fn idle_placed_workers_drag_mean_utilization() {
        // One job placed on hosts {0, 1} but with all recorded busy time
        // on host 0: host 1 must enter the mean at 0, halving it.
        let (jobs, run) = run_small();
        let m = scenario_metrics(&jobs, &run);

        // Re-run the metric with one extra phantom placed host that never
        // shows up in worker_busy: the mean must strictly drop.
        let mut padded = jobs.clone();
        padded[0].placement.push(echelon_simnet::ids::NodeId(999));
        let m2 = scenario_metrics(&padded, &run);
        assert!(m2.mean_utilization < m.mean_utilization);
        let n = {
            let mut w: Vec<_> = jobs
                .iter()
                .flat_map(|j| j.placement.iter().copied())
                .collect();
            w.sort();
            w.dedup();
            w.len() as f64
        };
        assert!(
            (m2.mean_utilization - m.mean_utilization * n / (n + 1.0)).abs() < 1e-9,
            "idle host must contribute exactly one zero term"
        );
    }

    #[test]
    fn tardiness_from_run_none_for_unrun_flows() {
        let cfg = WorkloadConfig::default_mix(5, 1, 16);
        let mut alloc = IdAlloc::new();
        let jobs = generate_workload(&cfg, &mut alloc);
        let empty = empty_run();
        for h in &jobs[0].dag.echelons {
            assert!(echelon_tardiness_from_run(h, &empty).is_none());
        }
    }

    fn empty_run() -> RunResult {
        RunResult {
            comp_spans: Default::default(),
            comm_spans: Default::default(),
            flow_releases: Default::default(),
            flow_finishes: Default::default(),
            job_makespans: Default::default(),
            makespan: SimTime::ZERO,
            worker_busy: Default::default(),
            timeline: vec![],
            trace: Default::default(),
            stats: Default::default(),
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 0.9), 5.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        // The inlined p95 this helper replaced, on a 20-element slice:
        // ceil(20 * 0.95) = 19 → the 19th smallest.
        let w: Vec<f64> = (1..=20).map(f64::from).collect();
        assert_eq!(percentile(&w, 0.95), 19.0);
    }

    fn record(
        job: u32,
        tenant: usize,
        arrival: f64,
        finished: Option<f64>,
        rejected: bool,
    ) -> JobRecord {
        JobRecord {
            job: JobId(job),
            tenant,
            arrival,
            admitted_at: finished.map(|_| arrival),
            finished_at: finished,
            rejected,
            echelons: Vec::new(),
        }
    }

    #[test]
    fn steady_state_respects_warmup_and_empty_slo() {
        let tenants = vec![
            crate::workload::TenantSpec {
                name: "prod".into(),
                weight: 1.0,
                // A zero-tardiness job still "exceeds" a negative budget:
                // forces the violation path without needing a real run.
                slo_tardiness: Some(-1.0),
            },
            crate::workload::TenantSpec {
                name: "batch".into(),
                weight: 1.0,
                slo_tardiness: None,
            },
        ];
        let records = vec![
            record(0, 0, 0.0, Some(1.0), false), // inside warmup: dropped
            record(1, 0, 1.0, Some(4.0), false),
            record(2, 1, 1.0, Some(6.0), false),
            record(3, 1, 2.0, None, true), // rejected
        ];
        let mut run = empty_run();
        run.makespan = SimTime::new(6.0);
        let m = steady_state_metrics(&records, &run, &tenants, 2.0);
        assert_eq!(m.completed, 2);
        assert!((m.throughput - 2.0 / 4.0).abs() < 1e-12);
        assert_eq!(m.p50_jct, 3.0);
        assert_eq!(m.p99_jct, 5.0);
        // prod's negative SLO flags its one completed job…
        assert_eq!(m.tenants[0].slo_violations, 1);
        assert!((m.tenants[0].violation_rate - 1.0).abs() < 1e-12);
        // …while the SLO-less batch tier can never violate.
        assert_eq!(m.tenants[1].slo_violations, 0);
        assert_eq!(m.tenants[1].violation_rate, 0.0);
        assert_eq!(m.tenants[1].rejected, 1);
    }

    #[test]
    fn steady_state_over_real_service_run() {
        use crate::service::{run_service, ServiceConfig, ServiceMode};
        use crate::workload::OpenLoopConfig;
        use echelon_simnet::fault::FaultPlan;
        use echelon_simnet::runner::RecomputeMode;

        let cfg = OpenLoopConfig::default_tiers(9, 15, 8, 0.6);
        let out = run_service(
            &Topology::big_switch_uniform(8, 1.0),
            &cfg,
            &ServiceConfig::default(),
            crate::scenario::SchedulerKind::Echelon,
            RecomputeMode::Full,
            &FaultPlan::new(Vec::new()),
            ServiceMode::Streaming,
        );
        let m = steady_state_metrics(&out.records, &out.result, &cfg.tenants, 0.0);
        assert_eq!(m.completed, 15);
        assert!(m.throughput > 0.0);
        assert!(m.p50_jct > 0.0 && m.p99_jct >= m.p50_jct);
        assert!(m.p99_tardiness >= m.p50_tardiness);
        let per_tier: usize = m.tenants.iter().map(|t| t.completed).sum();
        assert_eq!(per_tier, 15);
        for t in &m.tenants {
            assert!(t.violation_rate >= 0.0 && t.violation_rate <= 1.0);
        }
    }
}
