//! Post-hoc measurement of cluster runs.
//!
//! The runtime records raw spans; this module turns them into the
//! quantities the paper's objective and evaluation talk about: per-job
//! completion time, per-EchelonFlow tardiness (Eq. 2, with the reference
//! time reconstructed from the head flow's observed release — exactly
//! Definition 3.1's `r = s_0`), the global objective (Eq. 4), and worker
//! idleness.

use crate::workload::{GeneratedJob, ARRIVAL_LABEL};
use echelon_core::echelon::EchelonFlow;
use echelon_core::JobId;
use echelon_paradigms::runtime::RunResult;
use echelon_simnet::time::SimTime;
use std::collections::BTreeMap;

/// Computes an EchelonFlow's realized tardiness (Eq. 2) from a finished
/// run: the reference time is the earliest release among its flows and
/// every flow's tardiness is its finish minus its stage's ideal finish.
///
/// Returns `None` if any member flow never ran (job did not finish).
pub fn echelon_tardiness_from_run(h: &EchelonFlow, run: &RunResult) -> Option<f64> {
    let mut bound = h.clone();
    let reference = h
        .flows()
        .filter_map(|f| run.flow_releases.get(&f.id))
        .copied()
        .fold(SimTime::INFINITY, SimTime::min);
    if !reference.is_finite() {
        return None;
    }
    bound.bind_reference(reference);
    let mut worst = f64::NEG_INFINITY;
    for j in 0..bound.num_stages() {
        let d = bound.ideal_finish_of_stage(j);
        for f in bound.stage(j) {
            let e = run.flow_finishes.get(&f.id)?;
            worst = worst.max(*e - d);
        }
    }
    Some(worst)
}

/// Per-job summary.
#[derive(Debug, Clone)]
pub struct JobMetrics {
    /// The job.
    pub job: JobId,
    /// Arrival time.
    pub arrival: f64,
    /// Completion time of the job's last unit.
    pub finish: f64,
    /// Job completion time: `finish − arrival`.
    pub jct: f64,
    /// Sum over the job's EchelonFlows of clamped tardiness (Eq. 4
    /// restricted to the job).
    pub sum_tardiness: f64,
}

/// Whole-scenario summary.
#[derive(Debug, Clone)]
pub struct ScenarioMetrics {
    /// Per-job breakdown, in job order.
    pub jobs: Vec<JobMetrics>,
    /// Eq. 4 over every EchelonFlow of every job.
    pub total_tardiness: f64,
    /// Mean JCT.
    pub mean_jct: f64,
    /// 95th-percentile JCT (nearest-rank).
    pub p95_jct: f64,
    /// Completion time of the whole scenario.
    pub makespan: f64,
    /// Mean worker compute utilization over `[arrival of first job,
    /// makespan]`, excluding arrival gates.
    pub mean_utilization: f64,
}

/// Builds scenario metrics from generated jobs and their run.
pub fn scenario_metrics(jobs: &[GeneratedJob], run: &RunResult) -> ScenarioMetrics {
    let mut out_jobs = Vec::with_capacity(jobs.len());
    let mut total_tardiness = 0.0;
    for j in jobs {
        let finish = run
            .job_makespans
            .get(&j.dag.job)
            .copied()
            .unwrap_or(SimTime::ZERO)
            .secs();
        let sum_tardiness: f64 = j
            .dag
            .echelons
            .iter()
            .filter_map(|h| echelon_tardiness_from_run(h, run))
            .map(|t| t.max(0.0) * 1.0)
            .sum();
        total_tardiness += sum_tardiness;
        out_jobs.push(JobMetrics {
            job: j.dag.job,
            arrival: j.arrival,
            finish,
            jct: finish - j.arrival,
            sum_tardiness,
        });
    }

    let mut jcts: Vec<f64> = out_jobs.iter().map(|m| m.jct).collect();
    jcts.sort_by(f64::total_cmp);
    let mean_jct = if jcts.is_empty() {
        0.0
    } else {
        jcts.iter().sum::<f64>() / jcts.len() as f64
    };
    let p95_jct = if jcts.is_empty() {
        0.0
    } else {
        let idx = ((jcts.len() as f64) * 0.95).ceil() as usize;
        jcts[idx.clamp(1, jcts.len()) - 1]
    };

    // Utilization: compute seconds (excluding arrival gates) over the
    // per-worker active window.
    let mut gate_time: BTreeMap<_, f64> = BTreeMap::new();
    for e in &run.timeline {
        if e.label == ARRIVAL_LABEL {
            *gate_time.entry(e.worker).or_insert(0.0) += e.end - e.start;
        }
    }
    let span = run.makespan.secs();
    // Average over every *placed* worker, not just those that recorded
    // busy time: a host that sat idle the whole run (no finished compute
    // unit) is absent from `worker_busy`, and skipping it biased the mean
    // upward — a scheduler that starves half the cluster looked as
    // utilized as one that keeps every host busy.
    let mut placed: Vec<_> = jobs
        .iter()
        .flat_map(|j| j.placement.iter().copied())
        .chain(run.worker_busy.keys().copied())
        .collect();
    placed.sort();
    placed.dedup();
    let mut utils = Vec::new();
    for worker in &placed {
        let busy = run.worker_busy.get(worker).copied().unwrap_or(0.0);
        let gates = gate_time.get(worker).copied().unwrap_or(0.0);
        if span > 0.0 {
            utils.push(((busy - gates) / span).clamp(0.0, 1.0));
        }
    }
    let mean_utilization = if utils.is_empty() {
        0.0
    } else {
        utils.iter().sum::<f64>() / utils.len() as f64
    };

    ScenarioMetrics {
        jobs: out_jobs,
        total_tardiness,
        mean_jct,
        p95_jct,
        makespan: span,
        mean_utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_workload, WorkloadConfig};
    use echelon_paradigms::ids::IdAlloc;
    use echelon_paradigms::runtime::run_jobs;
    use echelon_simnet::runner::MaxMinPolicy;
    use echelon_simnet::topology::Topology;

    fn run_small() -> (Vec<crate::workload::GeneratedJob>, RunResult) {
        let cfg = WorkloadConfig::default_mix(5, 3, 16);
        let mut alloc = IdAlloc::new();
        let jobs = generate_workload(&cfg, &mut alloc);
        let topo = Topology::big_switch_uniform(16, 1.0);
        let dags: Vec<&_> = jobs.iter().map(|j| &j.dag).collect();
        let run = run_jobs(&topo, &dags, &mut MaxMinPolicy);
        (jobs, run)
    }

    #[test]
    fn jct_is_finish_minus_arrival() {
        let (jobs, run) = run_small();
        let m = scenario_metrics(&jobs, &run);
        assert_eq!(m.jobs.len(), 3);
        for jm in &m.jobs {
            assert!(jm.jct > 0.0, "job {:?} has non-positive JCT", jm.job);
            assert!((jm.finish - jm.arrival - jm.jct).abs() < 1e-9);
        }
        assert!(m.mean_jct > 0.0);
        assert!(m.p95_jct >= m.mean_jct * 0.5);
        assert!(m.makespan >= m.jobs.iter().map(|j| j.finish).fold(0.0, f64::max) - 1e-9);
    }

    #[test]
    fn tardiness_is_reconstructed() {
        let (jobs, run) = run_small();
        let m = scenario_metrics(&jobs, &run);
        // Under plain fair sharing in a shared cluster, some EchelonFlow
        // is late (positive total tardiness) unless everything is
        // perfectly uncontended — either way the metric is finite.
        assert!(m.total_tardiness.is_finite());
        assert!(m.total_tardiness >= 0.0);
    }

    #[test]
    fn utilization_in_unit_range() {
        let (jobs, run) = run_small();
        let m = scenario_metrics(&jobs, &run);
        assert!(m.mean_utilization > 0.0);
        assert!(m.mean_utilization <= 1.0);
    }

    #[test]
    fn idle_placed_workers_drag_mean_utilization() {
        // One job placed on hosts {0, 1} but with all recorded busy time
        // on host 0: host 1 must enter the mean at 0, halving it.
        let (jobs, run) = run_small();
        let m = scenario_metrics(&jobs, &run);

        // Re-run the metric with one extra phantom placed host that never
        // shows up in worker_busy: the mean must strictly drop.
        let mut padded = jobs.clone();
        padded[0].placement.push(echelon_simnet::ids::NodeId(999));
        let m2 = scenario_metrics(&padded, &run);
        assert!(m2.mean_utilization < m.mean_utilization);
        let n = {
            let mut w: Vec<_> = jobs
                .iter()
                .flat_map(|j| j.placement.iter().copied())
                .collect();
            w.sort();
            w.dedup();
            w.len() as f64
        };
        assert!(
            (m2.mean_utilization - m.mean_utilization * n / (n + 1.0)).abs() < 1e-9,
            "idle host must contribute exactly one zero term"
        );
    }

    #[test]
    fn tardiness_from_run_none_for_unrun_flows() {
        let cfg = WorkloadConfig::default_mix(5, 1, 16);
        let mut alloc = IdAlloc::new();
        let jobs = generate_workload(&cfg, &mut alloc);
        let empty = RunResult {
            comp_spans: Default::default(),
            comm_spans: Default::default(),
            flow_releases: Default::default(),
            flow_finishes: Default::default(),
            job_makespans: Default::default(),
            makespan: SimTime::ZERO,
            worker_busy: Default::default(),
            timeline: vec![],
            trace: Default::default(),
            stats: Default::default(),
        };
        for h in &jobs[0].dag.echelons {
            assert!(echelon_tardiness_from_run(h, &empty).is_none());
        }
    }
}
