//! Zero-dependency deterministic randomness.
//!
//! The simulator and its tests need *reproducible* pseudo-randomness:
//! identical seeds must generate identical workloads on every platform and
//! toolchain, forever, because experiment tables and differential tests
//! are checked in. [`DetRng`] is a small SplitMix64 generator with exactly
//! the draw primitives the workload generator and the property tests use.
//! Draws are pure functions of the seed and the call sequence — there is
//! no global state and no OS entropy anywhere.
//!
//! SplitMix64 passes BigCrush, has a full 2^64 period over its state, and
//! is the standard seeding primitive of the xoshiro family; it is more
//! than enough statistical quality for generating flow sizes and arrival
//! times.

/// A deterministic pseudo-random generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed. Identical seeds produce identical
    /// draw sequences.
    pub fn seed_from_u64(seed: u64) -> DetRng {
        DetRng { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw in the half-open interval `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi` and both are finite.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "bad range [{lo}, {hi})"
        );
        lo + self.next_f64() * (hi - lo)
    }

    /// A uniform draw in the closed interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo <= hi` and both are finite.
    pub fn f64_range_inclusive(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo <= hi && lo.is_finite() && hi.is_finite(),
            "bad range [{lo}, {hi}]"
        );
        // next_f64 is in [0, 1); scale by the next representable factor so
        // hi is reachable while staying within [lo, hi].
        let x = lo + self.next_f64() * (hi - lo);
        x.min(hi)
    }

    /// A uniform integer draw in `[lo, hi]` (inclusive on both ends).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn usize_range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "bad range [{lo}, {hi}]");
        let span = (hi - lo) as u64 + 1;
        // Multiply-shift rejection-free mapping (Lemire); bias is < 2^-64
        // per draw, far below anything the workloads can observe.
        let x = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        lo + x as usize
    }

    /// A uniform `u64` draw in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn u64_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "bad range [{lo}, {hi}]");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        let span = (hi - lo) as u128 + 1;
        let x = ((self.next_u64() as u128 * span) >> 64) as u64;
        lo + x
    }

    /// Fisher-Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.usize_range_inclusive(0, i);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_identical_sequences() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn f64_draws_in_range() {
        let mut rng = DetRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.f64_range(0.5, 2.0);
            assert!((0.5..2.0).contains(&x));
            let y = rng.f64_range_inclusive(-0.3, 0.3);
            assert!((-0.3..=0.3).contains(&y));
        }
    }

    #[test]
    fn usize_draws_cover_small_range() {
        let mut rng = DetRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let x = rng.usize_range_inclusive(2, 4);
            assert!((2..=4).contains(&x));
            seen[x - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of [2,4] drawn");
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..20).collect();
        let mut b: Vec<u32> = (0..20).collect();
        DetRng::seed_from_u64(5).shuffle(&mut a);
        DetRng::seed_from_u64(5).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
        let mut c: Vec<u32> = (0..20).collect();
        DetRng::seed_from_u64(6).shuffle(&mut c);
        assert_ne!(a, c);
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut rng = DetRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
