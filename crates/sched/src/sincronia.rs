//! Sincronia-style BSSI group ordering.
//!
//! Sincronia (SIGCOMM '18) showed that for Coflow scheduling it suffices
//! to compute a good *ordering* of coflows and then serve flows with any
//! ordering-respecting rate allocation. Its ordering primitive is BSSI
//! (Bottleneck-Select-Scale-Iterate), a primal-dual style rule that
//! repeatedly places one coflow **last**:
//!
//! 1. **Bottleneck**: find the most loaded resource `b`.
//! 2. **Select**: among unplaced coflows with load on `b`, place last the
//!    one with the largest load per unit weight.
//! 3. **Scale**: discount the weights of the remaining coflows by their
//!    share of the placed coflow's load on `b`.
//! 4. **Iterate** on the rest.
//!
//! We use BSSI as an alternative *inter-group* ordering inside both the
//! Varys-style coflow scheduler and the EchelonFlow scheduler (ablation
//! E11); groups are abstracted as weighted per-resource loads.

use echelon_core::EchelonId;
use std::collections::BTreeMap;

/// A group (coflow or EchelonFlow) reduced to its normalized resource
/// loads: `load[r]` = remaining bytes the group must push through
/// resource `r`, divided by the resource's capacity (i.e. seconds of
/// occupancy).
#[derive(Debug, Clone)]
pub struct GroupLoad {
    /// Group identifier.
    pub id: EchelonId,
    /// Group weight (higher = more important).
    pub weight: f64,
    /// Seconds of occupancy per resource index.
    pub load: BTreeMap<u32, f64>,
}

impl GroupLoad {
    /// The group's load on resource `r` (zero if it does not use it).
    pub fn on(&self, r: u32) -> f64 {
        self.load.get(&r).copied().unwrap_or(0.0)
    }
}

/// Computes the BSSI ordering, first (highest priority) to last.
pub fn bssi_order(groups: &[GroupLoad]) -> Vec<EchelonId> {
    let mut remaining: Vec<GroupLoad> = groups.to_vec();
    let mut order_rev: Vec<EchelonId> = Vec::with_capacity(groups.len());

    while !remaining.is_empty() {
        // 1. Bottleneck resource: max aggregate load (ties: smallest id).
        let mut agg: BTreeMap<u32, f64> = BTreeMap::new();
        for g in &remaining {
            for (&r, &l) in &g.load {
                *agg.entry(r).or_insert(0.0) += l;
            }
        }
        let bottleneck = agg
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&r, _)| r);
        let Some(b) = bottleneck else {
            // No group has any load (degenerate); keep id order.
            remaining.sort_by_key(|g| g.id);
            for g in remaining.iter().rev() {
                order_rev.push(g.id);
            }
            break;
        };

        // 2. Select the group to place last: largest load-per-weight on b.
        //    Groups without load on b are not candidates unless all are.
        let candidate = remaining
            .iter()
            .enumerate()
            .filter(|(_, g)| g.on(b) > 0.0)
            .max_by(|(_, x), (_, y)| {
                let kx = x.on(b) / x.weight.max(1e-12);
                let ky = y.on(b) / y.weight.max(1e-12);
                kx.total_cmp(&ky).then(y.id.cmp(&x.id))
            })
            .map(|(i, _)| i);
        let idx = match candidate {
            Some(i) => i,
            // All groups avoid the bottleneck (cannot happen when agg[b] >
            // 0, but guard anyway): place the largest-id group last.
            None => remaining
                .iter()
                .enumerate()
                .max_by_key(|(_, g)| g.id)
                .map(|(i, _)| i)
                .unwrap(),
        };
        let placed = remaining.swap_remove(idx);

        // 3. Scale the remaining weights.
        let denom = placed.on(b);
        if denom > 0.0 {
            for g in &mut remaining {
                g.weight = (g.weight - placed.weight * g.on(b) / denom).max(1e-12);
            }
        }
        order_rev.push(placed.id);
    }

    order_rev.reverse();
    order_rev
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(id: u64, weight: f64, loads: &[(u32, f64)]) -> GroupLoad {
        GroupLoad {
            id: EchelonId(id),
            weight,
            load: loads.iter().copied().collect(),
        }
    }

    #[test]
    fn single_group() {
        let order = bssi_order(&[group(0, 1.0, &[(0, 2.0)])]);
        assert_eq!(order, vec![EchelonId(0)]);
    }

    #[test]
    fn smaller_group_goes_first_on_shared_bottleneck() {
        // Classic SJF shape: equal weights, the heavy group is placed
        // last.
        let order = bssi_order(&[group(0, 1.0, &[(0, 10.0)]), group(1, 1.0, &[(0, 1.0)])]);
        assert_eq!(order, vec![EchelonId(1), EchelonId(0)]);
    }

    #[test]
    fn weight_overrides_size() {
        // The big group is 10x heavier in weight, so per-unit-weight it is
        // *smaller* and goes first.
        let order = bssi_order(&[group(0, 10.0, &[(0, 10.0)]), group(1, 1.0, &[(0, 2.0)])]);
        assert_eq!(order, vec![EchelonId(0), EchelonId(1)]);
    }

    #[test]
    fn disjoint_resources_any_order_is_consistent() {
        let a = [group(0, 1.0, &[(0, 3.0)]), group(1, 1.0, &[(1, 2.0)])];
        let order = bssi_order(&a);
        assert_eq!(order.len(), 2);
        // Deterministic across calls.
        assert_eq!(order, bssi_order(&a));
    }

    #[test]
    fn three_groups_two_resources() {
        // r0 is the global bottleneck (loads 4 + 3); group 0 dominates it
        // and is placed last.
        let order = bssi_order(&[
            group(0, 1.0, &[(0, 4.0)]),
            group(1, 1.0, &[(0, 3.0), (1, 1.0)]),
            group(2, 1.0, &[(1, 2.0)]),
        ]);
        assert_eq!(*order.last().unwrap(), EchelonId(0));
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn empty_input() {
        assert!(bssi_order(&[]).is_empty());
    }

    #[test]
    fn zero_load_groups_handled() {
        let order = bssi_order(&[group(0, 1.0, &[]), group(1, 1.0, &[(0, 1.0)])]);
        assert_eq!(order.len(), 2);
    }
}
