//! Persistent per-policy workspace for the MADD hot paths.
//!
//! The cached (incremental) allocation paths of [`crate::echelon`] and
//! [`crate::varys`] used to build transient `BTreeMap`s and `Vec`s on
//! every event: per-group member lists with repeated binary searches,
//! per-stage link-load maps, per-group cap maps, a fresh residual vector.
//! MADD rates are remaining-proportional, so *values* can never be cached
//! across events — but the *storage* can. [`GroupCsr`] keeps the whole
//! group structure in flat reusable buffers (a CSR layout: one `starts`
//! offset array over concatenated member slices), with member positions
//! in the id-sorted flow table resolved once per event. Paired with
//! [`echelon_simnet::linkindex::LinkLoad`] for the per-link sums, a
//! steady-state MADD allocation performs no heap allocation.
//!
//! Bit-identity with the map-based reference path is preserved by
//! construction: groups appear in ascending key order (the `BTreeMap`
//! iteration order of the member cache they are built from), members keep
//! their cached EDD order, and all per-link reductions run over
//! ascending sorted touched-link lists (see `LinkLoad`).

use echelon_simnet::time::SimTime;

/// Flat, reusable group structure for one allocation event.
///
/// Groups `g` own members `pos[starts[g]..starts[g + 1]]`; `pos` holds
/// indices into the id-sorted active-flow slice, `deadline` the matching
/// ideal finish times (unused by schedulers without per-member
/// deadlines). `order`, `rank*`, `caps` and `residual` are working
/// buffers for the inter-group sort and the serving pass.
#[derive(Debug, Clone)]
pub(crate) struct GroupCsr<K> {
    /// Group keys in ascending key order.
    pub keys: Vec<K>,
    /// CSR offsets into `pos`/`deadline`; `len = keys.len() + 1`.
    pub starts: Vec<usize>,
    /// Member positions in the id-sorted flow slice, per group.
    pub pos: Vec<usize>,
    /// Member ideal finish times, parallel to `pos`.
    pub deadline: Vec<SimTime>,
    /// Group indices (into `keys`) in serve order.
    pub order: Vec<usize>,
    /// Per-group primary sort rank.
    pub rank: Vec<f64>,
    /// Per-group secondary (time) sort rank.
    pub rank_time: Vec<SimTime>,
    /// Per-flow rate caps, indexed like the flow slice. Entries are only
    /// valid for the group currently being served (written just before
    /// its stages are).
    pub caps: Vec<f64>,
    /// Per-resource residual capacity during serving.
    pub residual: Vec<f64>,
}

impl<K> Default for GroupCsr<K> {
    fn default() -> GroupCsr<K> {
        GroupCsr {
            keys: Vec::new(),
            starts: Vec::new(),
            pos: Vec::new(),
            deadline: Vec::new(),
            order: Vec::new(),
            rank: Vec::new(),
            rank_time: Vec::new(),
            caps: Vec::new(),
            residual: Vec::new(),
        }
    }
}

impl<K> GroupCsr<K> {
    /// Clears the group structure (keys/offsets/members), keeping all
    /// capacity for reuse. Working buffers are reset by their own passes.
    pub fn clear_groups(&mut self) {
        self.keys.clear();
        self.starts.clear();
        self.pos.clear();
        self.deadline.clear();
        self.starts.push(0);
    }
}
