//! Brute-force optimal permutation schedules for small instances.
//!
//! Ground truth for the Property 1 experiments: EchelonFlow scheduling is
//! NP-hard (Property 3), but small instances can be solved exactly within
//! the class of *preemptive priority-order schedules* — fix a permutation
//! of the flows, serve them strict-priority with work-conserving filling,
//! recomputing at every event. This class contains EDD (optimal for
//! maximum lateness on a single resource with preemption) and, per
//! Sincronia's analysis, ordering-based schedules are within small
//! constant factors of optimal for coflow-like objectives on fabrics —
//! making the exhaustive best-over-permutations a solid empirical anchor.
//!
//! Complexity is `O(n!)` simulations; instances are capped at 9 flows.

use echelon_simnet::alloc::priority_fill;
use echelon_simnet::flow::{ActiveFlowView, FlowDemand};
use echelon_simnet::ids::FlowId;
use echelon_simnet::runner::{run_flows, FlowOutcomes, RatePolicy};
use echelon_simnet::time::SimTime;
use echelon_simnet::topology::Topology;
use std::collections::BTreeMap;

/// The objective to minimize over schedules.
#[derive(Debug, Clone)]
pub enum Objective {
    /// `max_j (finish_j − deadline_j)` over the given per-flow deadlines
    /// (the EchelonFlow tardiness, Eq. 2, for a single EchelonFlow).
    MaxTardiness(BTreeMap<FlowId, SimTime>),
    /// Latest finish time (communication makespan).
    Makespan,
    /// Sum of flow finish times.
    TotalCompletion,
}

impl Objective {
    /// Evaluates the objective on a finished simulation.
    ///
    /// # Panics
    ///
    /// Panics if a deadline references a flow with no completion.
    pub fn evaluate(&self, out: &FlowOutcomes) -> f64 {
        match self {
            Objective::MaxTardiness(deadlines) => deadlines
                .iter()
                .map(|(id, d)| {
                    let e = out
                        .finish(*id)
                        .unwrap_or_else(|| panic!("flow {id} did not finish"));
                    e - *d
                })
                .fold(f64::NEG_INFINITY, f64::max),
            Objective::Makespan => out.makespan().secs(),
            Objective::TotalCompletion => out.completions().values().map(|c| c.finish.secs()).sum(),
        }
    }
}

/// A policy serving flows in one fixed priority permutation.
struct FixedOrderPolicy {
    order: Vec<FlowId>,
}

impl RatePolicy for FixedOrderPolicy {
    fn allocate(
        &mut self,
        _now: SimTime,
        flows: &[ActiveFlowView],
        topo: &Topology,
    ) -> echelon_simnet::alloc::RateAlloc {
        priority_fill(topo, flows, &self.order, &BTreeMap::new())
    }

    fn name(&self) -> &'static str {
        "fixed-order"
    }
}

/// Result of the exhaustive search.
#[derive(Debug, Clone)]
pub struct OptimalResult {
    /// Best objective value found.
    pub best_value: f64,
    /// A permutation achieving it.
    pub best_order: Vec<FlowId>,
    /// Number of permutations evaluated.
    pub evaluated: usize,
}

/// Exhaustively searches all priority permutations of `demands` and
/// returns the best schedule under `objective`.
///
/// # Panics
///
/// Panics if there are more than 9 flows (factorial blow-up guard).
pub fn optimal_schedule(
    topo: &Topology,
    demands: &[FlowDemand],
    objective: &Objective,
) -> OptimalResult {
    assert!(
        demands.len() <= 9,
        "optimal search capped at 9 flows, got {}",
        demands.len()
    );
    let mut ids: Vec<FlowId> = demands.iter().map(|d| d.id).collect();
    ids.sort();

    let mut best_value = f64::INFINITY;
    let mut best_order = ids.clone();
    let mut evaluated = 0usize;

    permute(&mut ids.clone(), 0, &mut |perm| {
        let mut policy = FixedOrderPolicy {
            order: perm.to_vec(),
        };
        let out = run_flows(topo, demands.to_vec(), &mut policy);
        let value = objective.evaluate(&out);
        evaluated += 1;
        if value < best_value - 1e-12 {
            best_value = value;
            best_order = perm.to_vec();
        }
    });

    OptimalResult {
        best_value,
        best_order,
        evaluated,
    }
}

/// Runs one fixed permutation and returns its outcomes (for inspecting
/// the optimal schedule found by [`optimal_schedule`]).
pub fn run_permutation(topo: &Topology, demands: &[FlowDemand], order: &[FlowId]) -> FlowOutcomes {
    let mut policy = FixedOrderPolicy {
        order: order.to_vec(),
    };
    run_flows(topo, demands.to_vec(), &mut policy)
}

/// Heap's algorithm, calling `visit` on every permutation of `items`.
fn permute<T: Clone>(items: &mut Vec<T>, k: usize, visit: &mut impl FnMut(&[T])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echelon_simnet::ids::NodeId;

    fn demand(id: u64, size: f64, release: f64) -> FlowDemand {
        FlowDemand::new(
            FlowId(id),
            NodeId(0),
            NodeId(1),
            size,
            SimTime::new(release),
        )
    }

    fn deadlines(pairs: &[(u64, f64)]) -> BTreeMap<FlowId, SimTime> {
        pairs
            .iter()
            .map(|&(id, t)| (FlowId(id), SimTime::new(t)))
            .collect()
    }

    #[test]
    fn fig2_optimum_is_edd() {
        // Fig. 2's instance: the optimal max tardiness is 4, achieved by
        // the EDD order f0, f1, f2.
        let topo = Topology::chain(2, 1.0);
        let demands = vec![
            demand(0, 2.0, 1.0),
            demand(1, 2.0, 2.0),
            demand(2, 2.0, 3.0),
        ];
        let objective = Objective::MaxTardiness(deadlines(&[(0, 1.0), (1, 2.0), (2, 3.0)]));
        let res = optimal_schedule(&topo, &demands, &objective);
        assert_eq!(res.evaluated, 6);
        assert!(
            (res.best_value - 4.0).abs() < 1e-9,
            "best {}",
            res.best_value
        );
        assert_eq!(res.best_order, vec![FlowId(0), FlowId(1), FlowId(2)]);
    }

    #[test]
    fn makespan_insensitive_to_order_on_one_link() {
        let topo = Topology::chain(2, 1.0);
        let demands = vec![demand(0, 1.0, 0.0), demand(1, 2.0, 0.0)];
        let res = optimal_schedule(&topo, &demands, &Objective::Makespan);
        assert!((res.best_value - 3.0).abs() < 1e-9);
    }

    #[test]
    fn total_completion_prefers_srpt_order() {
        let topo = Topology::chain(2, 1.0);
        let demands = vec![demand(0, 3.0, 0.0), demand(1, 1.0, 0.0)];
        let res = optimal_schedule(&topo, &demands, &Objective::TotalCompletion);
        // Short first: finishes 1 and 4 → 5; long first would be 3 + 4 = 7.
        assert!((res.best_value - 5.0).abs() < 1e-9);
        assert_eq!(res.best_order[0], FlowId(1));
    }

    #[test]
    fn run_permutation_reproduces_best() {
        let topo = Topology::chain(2, 1.0);
        let demands = vec![demand(0, 3.0, 0.0), demand(1, 1.0, 0.0)];
        let res = optimal_schedule(&topo, &demands, &Objective::TotalCompletion);
        let out = run_permutation(&topo, &demands, &res.best_order);
        let value = Objective::TotalCompletion.evaluate(&out);
        assert!((value - res.best_value).abs() < 1e-9);
    }

    #[test]
    fn evaluated_counts_factorial() {
        let topo = Topology::chain(2, 1.0);
        let demands = vec![
            demand(0, 1.0, 0.0),
            demand(1, 1.0, 0.0),
            demand(2, 1.0, 0.0),
            demand(3, 1.0, 0.0),
        ];
        let res = optimal_schedule(&topo, &demands, &Objective::Makespan);
        assert_eq!(res.evaluated, 24);
    }

    #[test]
    #[should_panic(expected = "capped at 9")]
    fn too_many_flows_guarded() {
        let topo = Topology::chain(2, 1.0);
        let demands: Vec<_> = (0..10).map(|i| demand(i, 1.0, 0.0)).collect();
        let _ = optimal_schedule(&topo, &demands, &Objective::Makespan);
    }
}
