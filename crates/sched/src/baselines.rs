//! Per-flow baseline policies.
//!
//! These are the application-agnostic schedulers the paper positions
//! EchelonFlow against (§1): plain bandwidth fair sharing, FIFO, and
//! SRPT — the preemptive shortest-remaining-processing-time discipline
//! that per-flow schedulers like pFabric approximate.

use echelon_simnet::alloc::{priority_fill, priority_fill_dense, AllocScratch, RateAlloc};
use echelon_simnet::flow::ActiveFlowView;
use echelon_simnet::ids::FlowId;
use echelon_simnet::runner::{AllocHorizon, RatePolicy};
use echelon_simnet::time::SimTime;
use echelon_simnet::topology::Topology;
use std::collections::BTreeMap;

/// Max-min fair sharing (re-exported from the substrate for symmetry).
pub type FairPolicy = echelon_simnet::runner::MaxMinPolicy;

/// First-in-first-out: strict priority by release time (ties by id), with
/// the greedy filling making it work conserving.
#[derive(Debug, Default, Clone, Copy)]
pub struct FifoPolicy;

impl RatePolicy for FifoPolicy {
    fn allocate(&mut self, _now: SimTime, flows: &[ActiveFlowView], topo: &Topology) -> RateAlloc {
        let mut order: Vec<&ActiveFlowView> = flows.iter().collect();
        order.sort_by(|a, b| a.release.cmp(&b.release).then(a.id.cmp(&b.id)));
        let ids: Vec<FlowId> = order.into_iter().map(|f| f.id).collect();
        priority_fill(topo, flows, &ids, &BTreeMap::new())
    }

    fn allocate_dense(
        &mut self,
        _now: SimTime,
        flows: &[ActiveFlowView],
        topo: &Topology,
        ws: &mut AllocScratch,
        out: &mut Vec<f64>,
    ) {
        let mut order: Vec<&ActiveFlowView> = flows.iter().collect();
        order.sort_by(|a, b| a.release.cmp(&b.release).then(a.id.cmp(&b.id)));
        let ids: Vec<FlowId> = order.into_iter().map(|f| f.id).collect();
        out.clear();
        out.resize(flows.len(), 0.0);
        priority_fill_dense(topo, flows, &ids, None, out, ws);
    }

    /// The FIFO order depends only on release times and ids, and the
    /// greedy fill only on routes and capacities — neither moves with
    /// time, so the allocation holds until the flow set changes.
    fn horizon(&self, _now: SimTime, _flows: &[ActiveFlowView], _rates: &[f64]) -> AllocHorizon {
        AllocHorizon::UntilFlowChange
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Preemptive shortest-remaining-processing-time: strict priority by
/// remaining bytes (ties by id). Minimizes mean FCT on a single resource;
/// the canonical "flow scheduling without application semantics" point of
/// comparison.
#[derive(Debug, Default, Clone, Copy)]
pub struct SrptPolicy;

impl RatePolicy for SrptPolicy {
    fn allocate(&mut self, _now: SimTime, flows: &[ActiveFlowView], topo: &Topology) -> RateAlloc {
        let mut order: Vec<&ActiveFlowView> = flows.iter().collect();
        order.sort_by(|a, b| a.remaining.total_cmp(&b.remaining).then(a.id.cmp(&b.id)));
        let ids: Vec<FlowId> = order.into_iter().map(|f| f.id).collect();
        priority_fill(topo, flows, &ids, &BTreeMap::new())
    }

    fn allocate_dense(
        &mut self,
        _now: SimTime,
        flows: &[ActiveFlowView],
        topo: &Topology,
        ws: &mut AllocScratch,
        out: &mut Vec<f64>,
    ) {
        let mut order: Vec<&ActiveFlowView> = flows.iter().collect();
        order.sort_by(|a, b| a.remaining.total_cmp(&b.remaining).then(a.id.cmp(&b.id)));
        let ids: Vec<FlowId> = order.into_iter().map(|f| f.id).collect();
        out.clear();
        out.resize(flows.len(), 0.0);
        priority_fill_dense(topo, flows, &ids, None, out, ws);
    }

    /// The greedy fill depends only on the priority order, so the
    /// allocation stays valid until two flows swap places in the
    /// remaining-bytes sort. Under the current rates each gap shrinks
    /// linearly, so the first crossing is computable in closed form; the
    /// margin keeps the certification conservative against accumulated
    /// float rounding in the actual remaining-bytes evolution (an early
    /// recompute is always safe — it just re-derives the same order).
    fn horizon(&self, now: SimTime, flows: &[ActiveFlowView], rates: &[f64]) -> AllocHorizon {
        const MARGIN: f64 = 1e-6;
        let mut idx: Vec<usize> = (0..flows.len()).collect();
        idx.sort_by(|&a, &b| {
            flows[a]
                .remaining
                .total_cmp(&flows[b].remaining)
                .then(flows[a].id.cmp(&flows[b].id))
        });
        let mut first: Option<f64> = None;
        for pair in idx.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let (ra, rb) = (rates[a], rates[b]);
            if rb <= ra {
                continue; // the gap never shrinks: no crossing
            }
            let gap = flows[b].remaining - flows[a].remaining;
            let dt = gap / (rb - ra);
            if dt <= MARGIN {
                return AllocHorizon::NextEvent; // crossing is imminent
            }
            first = Some(first.map_or(dt, |cur: f64| cur.min(dt)));
        }
        match first {
            None => AllocHorizon::UntilFlowChange,
            Some(dt) => AllocHorizon::Until(SimTime::new(now.secs() + dt - MARGIN)),
        }
    }

    fn name(&self) -> &'static str {
        "srpt"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echelon_simnet::flow::FlowDemand;
    use echelon_simnet::ids::NodeId;
    use echelon_simnet::runner::run_flows;

    fn demand(id: u64, size: f64, release: f64) -> FlowDemand {
        FlowDemand::new(
            FlowId(id),
            NodeId(0),
            NodeId(1),
            size,
            SimTime::new(release),
        )
    }

    #[test]
    fn fifo_serves_in_release_order() {
        let topo = Topology::chain(2, 1.0);
        let out = run_flows(
            &topo,
            vec![demand(0, 2.0, 0.0), demand(1, 1.0, 0.5)],
            &mut FifoPolicy,
        );
        // f0 runs [0,2] at full rate despite f1 being shorter.
        assert!(out.finish(FlowId(0)).unwrap().approx_eq(SimTime::new(2.0)));
        assert!(out.finish(FlowId(1)).unwrap().approx_eq(SimTime::new(3.0)));
    }

    #[test]
    fn srpt_preempts_for_shorter_flow() {
        let topo = Topology::chain(2, 1.0);
        let out = run_flows(
            &topo,
            vec![demand(0, 2.0, 0.0), demand(1, 0.5, 1.0)],
            &mut SrptPolicy,
        );
        // At t=1, f0 has 1.0 left, f1 has 0.5 → f1 wins, finishes at 1.5;
        // f0 resumes and finishes at 2.5.
        assert!(out.finish(FlowId(1)).unwrap().approx_eq(SimTime::new(1.5)));
        assert!(out.finish(FlowId(0)).unwrap().approx_eq(SimTime::new(2.5)));
    }

    #[test]
    fn srpt_ties_broken_by_id() {
        let topo = Topology::chain(2, 1.0);
        let out = run_flows(
            &topo,
            vec![demand(1, 1.0, 0.0), demand(0, 1.0, 0.0)],
            &mut SrptPolicy,
        );
        assert!(out.finish(FlowId(0)).unwrap().approx_eq(SimTime::new(1.0)));
        assert!(out.finish(FlowId(1)).unwrap().approx_eq(SimTime::new(2.0)));
    }

    #[test]
    fn fifo_is_work_conserving_across_ports() {
        // Two flows on disjoint ports both run at full rate.
        let topo = Topology::big_switch_uniform(4, 1.0);
        let demands = vec![
            FlowDemand::new(FlowId(0), NodeId(0), NodeId(1), 1.0, SimTime::ZERO),
            FlowDemand::new(FlowId(1), NodeId(2), NodeId(3), 1.0, SimTime::ZERO),
        ];
        let out = run_flows(&topo, demands, &mut FifoPolicy);
        assert!(out.finish(FlowId(0)).unwrap().approx_eq(SimTime::new(1.0)));
        assert!(out.finish(FlowId(1)).unwrap().approx_eq(SimTime::new(1.0)));
    }
}
