//! The EchelonFlow scheduler (the paper's contribution, §3.3 Property 4).
//!
//! Property 4 states Coflow algorithms adapt to EchelonFlow scheduling by
//! swapping the metric: *"in intra-EchelonFlow scheduling, we estimate the
//! latest flow that has the largest tardiness, rather than the longest
//! flow completion time as for Coflow; in inter-EchelonFlow scheduling, we
//! rank EchelonFlows by each EchelonFlow's tardiness"*. [`EchelonMadd`] is
//! that adaptation of Varys/MADD:
//!
//! - **Intra-EchelonFlow**: stages are served in ideal-finish-time order
//!   (earliest due date — on a single resource, preemptive EDD provably
//!   minimizes the maximum lateness, i.e. the EchelonFlow's tardiness,
//!   Eq. 2). Flows *within* a stage share one ideal finish time (a Coflow
//!   stage, e.g. one FSDP all-gather) and receive MADD rate shaping so
//!   they finish together — exactly Varys' intra behaviour, recovering it
//!   on degenerate (Coflow-compliant) inputs.
//! - **Inter-EchelonFlow**: EchelonFlows are ranked by their projected
//!   tardiness (Eq. 2 under isolation), with alternative orderings
//!   (least-work, earliest-deadline, BSSI) available as ablations.
//! - **Work conservation**: leftover bandwidth is backfilled max-min, so
//!   flows may finish *before* their ideal times — tardiness, unlike a
//!   deadline, rewards early finishes (the `FinishEarly` default). The
//!   `Equalize` mode instead shapes rates so every flow targets
//!   `d_j + τ*` (the literal constant-tardiness echelon), the behaviour
//!   sketched in the paper's Fig. 6.

use crate::book::EchelonBook;
use crate::scratch::GroupCsr;
use crate::sincronia::{bssi_order, GroupLoad};
use echelon_core::echelon::EchelonFlow;
use echelon_core::EchelonId;
use echelon_simnet::alloc::{dense_to_alloc, waterfill_dense, AllocScratch, RateAlloc};
use echelon_simnet::flow::ActiveFlowView;
use echelon_simnet::fluid::FlowDelta;
use echelon_simnet::ids::FlowId;
use echelon_simnet::linkindex::{LinkIndex, LinkLoad};
use echelon_simnet::runner::RatePolicy;
use echelon_simnet::time::{SimTime, EPS};
use echelon_simnet::topology::Topology;
use std::collections::BTreeMap;

/// Inter-EchelonFlow ordering discipline.
///
/// The default is [`InterOrder::EarliestDeadline`]: the deadline-faithful
/// reading of the tardiness metric — the group whose computation pattern
/// needs service soonest is served first. Across the bundled experiments
/// it never does worse than Coflow scheduling and strictly improves every
/// non-compliant paradigm; [`InterOrder::LeastWork`] (the literal SEBF
/// analog) can shave a few more percent of *aggregate* tardiness on some
/// multi-tenant mixes at the cost of occasionally starving an urgent
/// pipeline behind small background groups (see experiment E11f).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterOrder {
    /// Rank by weighted projected tardiness, largest first (the literal
    /// "rank EchelonFlows by each EchelonFlow's tardiness" reading).
    MostTardy,
    /// Smallest isolation bottleneck first (Varys' SEBF).
    LeastWork,
    /// Smallest *current-stage* bottleneck first, ties broken by earliest
    /// deadline: SEBF at the granularity the EchelonFlow is actually
    /// consumed (its next unfinished stage), so a long pipeline is not
    /// penalized for work that is not due yet.
    StageLeastWork,
    /// Earliest ideal finish time among active flows first. Default.
    EarliestDeadline,
    /// Sincronia BSSI over group loads.
    Bssi,
}

/// Intra-EchelonFlow rate discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntraMode {
    /// Serve stages earliest-due-date at full residual rate (work
    /// conserving; optimal max-lateness on a single resource). Default.
    FinishEarly,
    /// Shape every flow to finish at `d_j + τ*` where `τ*` is the
    /// EchelonFlow's projected tardiness: the literal echelon formation.
    Equalize,
}

/// Grouping key: declared EchelonFlow or implicit singleton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum GroupKey {
    Echelon(EchelonId),
    Solo(FlowId),
}

/// A member flow with its resolved ideal finish time.
struct Member<'a> {
    view: &'a ActiveFlowView,
    deadline: SimTime,
}

/// Projected tardiness of a member set under isolation: serve EDD at full
/// capacity; the answer is the max over EDD prefixes and resources of
/// `now + prefix_occupancy − deadline`.
fn projected_tardiness(now: SimTime, members: &[Member<'_>], topo: &Topology) -> f64 {
    let mut worst = f64::NEG_INFINITY;
    let mut per_resource: BTreeMap<u32, f64> = BTreeMap::new();
    for m in members {
        for r in &m.view.route {
            *per_resource.entry(r.0).or_insert(0.0) += m.view.remaining / topo.capacity(*r);
        }
        let finish_lb = m
            .view
            .route
            .iter()
            .map(|r| per_resource[&r.0])
            .fold(0.0f64, f64::max);
        worst = worst.max(now.secs() + finish_lb - m.deadline.secs());
    }
    worst
}

/// The EchelonFlow scheduler: tardiness-metric MADD per Property 4.
#[derive(Debug, Clone)]
pub struct EchelonMadd {
    book: EchelonBook,
    inter: InterOrder,
    intra: IntraMode,
    backfill: bool,
    // Incremental state: EDD-ordered `(deadline, id)` member list per
    // active group. Ideal finish times are static once an echelon's
    // reference is bound, so these orderings survive across events; only
    // groups whose flows arrived or departed need touching. Maintained by
    // `apply_delta`, consumed by `allocate_cached`; the naive `allocate`
    // path neither reads nor writes it.
    cached_members: BTreeMap<GroupKey, Vec<(SimTime, FlowId)>>,
    // Link↔flow adjacency maintained in lockstep with `cached_members`
    // from the same deltas. Its O(F) consistency check guards both; when
    // it fails, the conservative fallback rebuilds everything from the
    // flow table (see DESIGN.md §8).
    links: LinkIndex,
    // Reusable flat group structure + per-link accumulator for the
    // cached allocation path: steady-state events allocate nothing.
    scratch: GroupCsr<GroupKey>,
    load: LinkLoad,
}

impl EchelonMadd {
    /// Creates the scheduler over the declared EchelonFlows with the
    /// defaults: earliest-deadline inter ordering, EDD intra discipline,
    /// work-conserving backfill.
    pub fn new(echelons: Vec<EchelonFlow>) -> EchelonMadd {
        EchelonMadd {
            book: EchelonBook::new(echelons),
            inter: InterOrder::EarliestDeadline,
            intra: IntraMode::FinishEarly,
            backfill: true,
            cached_members: BTreeMap::new(),
            links: LinkIndex::default(),
            scratch: GroupCsr::default(),
            load: LinkLoad::new(),
        }
    }

    /// Selects the inter-EchelonFlow ordering.
    pub fn with_inter(mut self, inter: InterOrder) -> EchelonMadd {
        self.inter = inter;
        self
    }

    /// Selects the intra-EchelonFlow discipline.
    pub fn with_intra(mut self, intra: IntraMode) -> EchelonMadd {
        self.intra = intra;
        self
    }

    /// Enables/disables work-conserving backfill.
    pub fn with_backfill(mut self, backfill: bool) -> EchelonMadd {
        self.backfill = backfill;
        self
    }

    /// Access the underlying book (for inspection in experiments).
    pub fn book(&self) -> &EchelonBook {
        &self.book
    }

    /// Registers one more EchelonFlow into the live scheduler (open-loop
    /// admission; see [`EchelonBook::register`]). Safe — i.e. provably
    /// allocation-neutral — any time before the echelon's head flow is
    /// released.
    ///
    /// # Panics
    ///
    /// Panics if the id or any member flow is already claimed.
    pub fn register(&mut self, echelon: EchelonFlow) {
        self.book.register(echelon);
    }

    /// Evicts a completed EchelonFlow, refusing (returning `false`) while
    /// any member flow is still active. The active-flow guard also
    /// guarantees the incremental member cache holds no entry for the
    /// group, so no cache surgery is needed.
    pub fn evict(&mut self, id: EchelonId, active: &[ActiveFlowView]) -> bool {
        let evicted = self.book.evict(id, active);
        debug_assert!(
            !evicted || !self.cached_members.contains_key(&GroupKey::Echelon(id)),
            "evicted echelon {id} still has cached members"
        );
        evicted
    }

    /// Binds reference times for any EchelonFlow whose head flow has just
    /// become active, without computing an allocation.
    ///
    /// Reference binding is an *observation* of the data plane (the
    /// paper's `r = s_0` — when the head flow started), not a scheduling
    /// decision: callers that do not run the heuristic at every event
    /// (e.g. a coordinator between interval decisions, or one serving a
    /// fallback during an outage) must still observe each event, or a
    /// head flow that finishes before the next heuristic run silently
    /// binds the reference from a later member.
    pub fn observe(&mut self, now: SimTime, flows: &[ActiveFlowView]) {
        self.book.observe(now, flows);
    }

    fn group_of(&self, flow: FlowId) -> GroupKey {
        match self.book.echelon_of(flow) {
            Some(h) => GroupKey::Echelon(h.id()),
            None => GroupKey::Solo(flow),
        }
    }

    /// Resolves members with deadlines for one group. Solo flows use
    /// their release time as deadline, making their tardiness their FCT.
    fn members<'a>(&self, key: GroupKey, flows: &[&'a ActiveFlowView]) -> Vec<Member<'a>> {
        let mut members: Vec<Member<'a>> = flows
            .iter()
            .map(|v| {
                let deadline = match key {
                    GroupKey::Echelon(_) => self
                        .book
                        .ideal_finish(v.id)
                        .expect("member of bound echelon"),
                    GroupKey::Solo(_) => v.release,
                };
                Member { view: v, deadline }
            })
            .collect();
        members.sort_by(|a, b| a.deadline.cmp(&b.deadline).then(a.view.id.cmp(&b.view.id)));
        members
    }

    fn weight_of(&self, key: GroupKey) -> f64 {
        match key {
            GroupKey::Echelon(id) => self.book.get(id).map(|h| h.weight()).unwrap_or(1.0),
            GroupKey::Solo(_) => 1.0,
        }
    }

    fn isolation_gamma(members: &[Member<'_>], topo: &Topology) -> f64 {
        let mut per_resource: BTreeMap<u32, f64> = BTreeMap::new();
        for m in members {
            for r in &m.view.route {
                *per_resource.entry(r.0).or_insert(0.0) += m.view.remaining / topo.capacity(*r);
            }
        }
        per_resource.values().fold(0.0f64, |a, &b| a.max(b))
    }

    fn serve_order(
        &self,
        now: SimTime,
        groups: &BTreeMap<GroupKey, Vec<&ActiveFlowView>>,
        topo: &Topology,
    ) -> Vec<GroupKey> {
        let mut keys: Vec<GroupKey> = groups.keys().copied().collect();
        match self.inter {
            InterOrder::MostTardy => {
                // Rank by *weighted* projected tardiness: the weighted sum
                // objective (Eq. 4) makes a unit of lateness on a heavy
                // EchelonFlow cost `weight` units, so heavier groups are
                // proportionally more urgent.
                keys.sort_by(|a, b| {
                    let ta = self.weight_of(*a)
                        * projected_tardiness(now, &self.members(*a, &groups[a]), topo);
                    let tb = self.weight_of(*b)
                        * projected_tardiness(now, &self.members(*b, &groups[b]), topo);
                    tb.total_cmp(&ta).then(a.cmp(b))
                });
            }
            InterOrder::LeastWork => {
                keys.sort_by(|a, b| {
                    let ga = Self::isolation_gamma(&self.members(*a, &groups[a]), topo);
                    let gb = Self::isolation_gamma(&self.members(*b, &groups[b]), topo);
                    ga.total_cmp(&gb).then(a.cmp(b))
                });
            }
            InterOrder::StageLeastWork => {
                let stage_key = |k: &GroupKey| -> (f64, SimTime) {
                    let members = self.members(*k, &groups[k]);
                    let head_deadline = members[0].deadline;
                    let stage: Vec<_> = members
                        .iter()
                        .take_while(|m| m.deadline.approx_eq(head_deadline))
                        .collect();
                    let mut per_resource: BTreeMap<u32, f64> = BTreeMap::new();
                    for m in &stage {
                        for r in &m.view.route {
                            *per_resource.entry(r.0).or_insert(0.0) +=
                                m.view.remaining / topo.capacity(*r);
                        }
                    }
                    let gamma = per_resource.values().fold(0.0f64, |a, &b| a.max(b));
                    (gamma, head_deadline)
                };
                keys.sort_by(|a, b| {
                    let (ga, da) = stage_key(a);
                    let (gb, db) = stage_key(b);
                    ga.total_cmp(&gb).then(da.cmp(&db)).then(a.cmp(b))
                });
            }
            InterOrder::EarliestDeadline => {
                keys.sort_by(|a, b| {
                    let da = self.members(*a, &groups[a])[0].deadline;
                    let db = self.members(*b, &groups[b])[0].deadline;
                    da.cmp(&db).then(a.cmp(b))
                });
            }
            InterOrder::Bssi => {
                let mut key_for_id = BTreeMap::new();
                let loads: Vec<GroupLoad> = keys
                    .iter()
                    .enumerate()
                    .map(|(i, &k)| {
                        let id = EchelonId(i as u64);
                        key_for_id.insert(id, k);
                        let mut load = BTreeMap::new();
                        for v in &groups[&k] {
                            for r in &v.route {
                                *load.entry(r.0).or_insert(0.0) += v.remaining / topo.capacity(*r);
                            }
                        }
                        GroupLoad {
                            id,
                            weight: self.weight_of(k),
                            load,
                        }
                    })
                    .collect();
                keys = bssi_order(&loads)
                    .into_iter()
                    .map(|id| key_for_id[&id])
                    .collect();
            }
        }
        keys
    }

    /// MADD over one deadline-stage against residual capacity: all flows
    /// of the stage finish together at the stage's residual bottleneck.
    /// Rates land in the dense `rates` slice (indexed like `flows`); the
    /// slice starts zeroed, so a starved stage writes nothing.
    fn serve_stage(
        stage: &[Member<'_>],
        flows: &[ActiveFlowView],
        residual: &mut [f64],
        rates: &mut [f64],
        rate_caps: Option<&BTreeMap<FlowId, f64>>,
    ) {
        let mut per_resource: BTreeMap<u32, f64> = BTreeMap::new();
        for m in stage {
            for r in &m.view.route {
                *per_resource.entry(r.0).or_insert(0.0) += m.view.remaining;
            }
        }
        let mut gamma: f64 = 0.0;
        for (&r, &bytes) in &per_resource {
            let res = residual[r as usize];
            if res <= EPS {
                gamma = f64::INFINITY;
                break;
            }
            gamma = gamma.max(bytes / res);
        }
        if !gamma.is_finite() || gamma <= EPS {
            return;
        }
        for m in stage {
            let v = m.view;
            let mut rate = v.remaining / gamma;
            if let Some(caps) = rate_caps {
                if let Some(&cap) = caps.get(&v.id) {
                    rate = rate.min(cap);
                }
            }
            let idx = flows
                .binary_search_by(|f| f.id.cmp(&v.id))
                .expect("served flow is active");
            rates[idx] = rate;
            for r in &v.route {
                residual[r.0 as usize] = (residual[r.0 as usize] - rate).max(0.0);
            }
        }
    }

    /// Serves pre-ordered groups against residual capacity and backfills,
    /// writing the dense allocation (indexed like the id-sorted `flows`)
    /// into `rates`. Shared tail of the naive and incremental allocation
    /// paths; member lists must be EDD-ordered (deadline, then id).
    #[allow(clippy::too_many_arguments)]
    fn serve(
        &self,
        now: SimTime,
        order: &[GroupKey],
        members_of: &BTreeMap<GroupKey, Vec<Member<'_>>>,
        flows: &[ActiveFlowView],
        topo: &Topology,
        ws: &mut AllocScratch,
        rates: &mut Vec<f64>,
    ) {
        debug_assert!(flows.windows(2).all(|w| w[0].id < w[1].id));
        let mut residual: Vec<f64> = (0..topo.num_resources())
            .map(|r| topo.capacity(echelon_simnet::ids::ResourceId(r as u32)))
            .collect();
        rates.clear();
        rates.resize(flows.len(), 0.0);

        for key in order {
            let members = &members_of[key];
            // In Equalize mode, cap every flow at the rate that makes it
            // finish exactly at d_j + τ*; in FinishEarly mode, no caps.
            let rate_caps: Option<BTreeMap<FlowId, f64>> = match self.intra {
                IntraMode::FinishEarly => None,
                IntraMode::Equalize => {
                    let tau = projected_tardiness(now, members, topo).max(0.0);
                    Some(
                        members
                            .iter()
                            .map(|m| {
                                let target = m.deadline.secs() + tau;
                                let horizon = (target - now.secs()).max(EPS);
                                (m.view.id, m.view.remaining / horizon)
                            })
                            .collect(),
                    )
                }
            };
            // Partition into deadline stages (EDD order is already sorted).
            let mut i = 0;
            while i < members.len() {
                let d = members[i].deadline;
                let mut j = i;
                while j < members.len() && members[j].deadline.approx_eq(d) {
                    j += 1;
                }
                Self::serve_stage(
                    &members[i..j],
                    flows,
                    &mut residual,
                    rates,
                    rate_caps.as_ref(),
                );
                i = j;
            }
        }

        if self.backfill {
            // The MADD rates become the waterfill floor in place: leftover
            // capacity is shared max-min on top of them.
            waterfill_dense(topo, flows, None, None, rates, ws);
        }
    }

    fn deadline_of(&self, key: GroupKey, view: &ActiveFlowView) -> SimTime {
        match key {
            GroupKey::Echelon(_) => self
                .book
                .ideal_finish(view.id)
                .expect("member of bound echelon"),
            GroupKey::Solo(_) => view.release,
        }
    }

    /// Updates the cached group membership/EDD orderings for the flows
    /// that arrived or departed since the previous call.
    ///
    /// `flows` is the *current* id-sorted active set (as produced by the
    /// fluid network). Every arrival and departure must be reported
    /// exactly once across the sequence of calls; [`Self::allocate_cached`]
    /// self-heals from missed reports by rebuilding, at full cost.
    pub fn apply_delta(&mut self, now: SimTime, flows: &[ActiveFlowView], delta: &FlowDelta) {
        // Reference binding driven by the delta alone: O(arrivals), not
        // O(active flows); debug builds assert agreement with the full
        // scan inside `observe_delta`.
        self.book.observe_delta(now, flows, delta);
        // Arrivals in ascending id order: reference binding is first-touch,
        // and the naive path observes the id-sorted flow slice.
        let mut arrived = delta.arrived.clone();
        arrived.sort_unstable();
        for id in arrived {
            let Ok(idx) = flows.binary_search_by(|v| v.id.cmp(&id)) else {
                continue; // arrived and departed without ever being served
            };
            let view = &flows[idx];
            let key = self.group_of(id);
            let deadline = self.deadline_of(key, view);
            let list = self.cached_members.entry(key).or_default();
            let pos = list.partition_point(|&(d, f)| (d, f) < (deadline, id));
            list.insert(pos, (deadline, id));
        }
        for &id in &delta.departed {
            let key = self.group_of(id);
            if let Some(list) = self.cached_members.get_mut(&key) {
                if let Some(pos) = list.iter().position(|&(_, f)| f == id) {
                    list.remove(pos);
                }
                if list.is_empty() {
                    self.cached_members.remove(&key);
                }
            }
        }
        // The link index receives exactly the same delta stream, so one
        // O(F) consistency check covers both caches.
        self.links.apply_delta(flows, delta);
    }

    /// True when the cache covers exactly the given active set. Checked
    /// through the link index (updated in lockstep with `cached_members`
    /// from the same deltas): an O(F) id-set walk instead of a per-flow
    /// binary-search sweep.
    fn cache_consistent(&self, flows: &[ActiveFlowView]) -> bool {
        self.links.consistent(flows)
    }

    /// Re-derives the cache (and the link index) from scratch — the
    /// conservative fallback when a delta was missed. Identical grouping
    /// and ordering to the naive path.
    fn rebuild_cache(&mut self, now: SimTime, flows: &[ActiveFlowView]) {
        self.book.observe(now, flows);
        self.cached_members.clear();
        for v in flows {
            let key = self.group_of(v.id);
            let deadline = self.deadline_of(key, v);
            self.cached_members
                .entry(key)
                .or_default()
                .push((deadline, v.id));
        }
        for list in self.cached_members.values_mut() {
            list.sort_unstable();
        }
        self.links.rebuild(flows);
    }

    /// [`projected_tardiness`] over CSR member slices, accumulating into
    /// the reusable [`LinkLoad`] instead of a transient `BTreeMap`. The
    /// running per-link sums build in the same member order with the same
    /// first-touch semantics, so the result is bit-identical.
    fn projected_tardiness_csr(
        now: SimTime,
        flows: &[ActiveFlowView],
        pos: &[usize],
        deadline: &[SimTime],
        topo: &Topology,
        load: &mut LinkLoad,
    ) -> f64 {
        let mut worst = f64::NEG_INFINITY;
        load.begin(topo.num_resources());
        for (&p, d) in pos.iter().zip(deadline) {
            let v = &flows[p];
            for r in &v.route {
                load.add(*r, v.remaining / topo.capacity(*r));
            }
            let finish_lb = v.route.iter().map(|r| load.get(*r)).fold(0.0f64, f64::max);
            worst = worst.max(now.secs() + finish_lb - d.secs());
        }
        worst
    }

    /// [`Self::isolation_gamma`] over a CSR member slice: max of the
    /// per-link load sums, folded over the ascending touched-link list
    /// exactly as the map-based fold enumerates its keys.
    fn isolation_gamma_csr(
        flows: &[ActiveFlowView],
        pos: &[usize],
        topo: &Topology,
        load: &mut LinkLoad,
    ) -> f64 {
        load.begin(topo.num_resources());
        for &p in pos {
            let v = &flows[p];
            for r in &v.route {
                load.add(*r, v.remaining / topo.capacity(*r));
            }
        }
        load.sort_touched();
        let mut gamma = 0.0f64;
        for i in 0..load.touched().len() {
            gamma = gamma.max(load.get(load.touched()[i]));
        }
        gamma
    }

    /// Inter-group ordering over the flat group structure: each group's
    /// ranking value is computed once into a reusable rank buffer, then
    /// `order` is sorted with a strict total order (deterministic key
    /// tie-break), yielding exactly the naive path's order.
    fn order_groups(
        &self,
        now: SimTime,
        flows: &[ActiveFlowView],
        topo: &Topology,
        sc: &mut GroupCsr<GroupKey>,
        load: &mut LinkLoad,
    ) {
        let groups = sc.keys.len();
        sc.order.clear();
        sc.order.extend(0..groups);
        match self.inter {
            InterOrder::MostTardy => {
                sc.rank.clear();
                for g in 0..groups {
                    let tau = Self::projected_tardiness_csr(
                        now,
                        flows,
                        &sc.pos[sc.starts[g]..sc.starts[g + 1]],
                        &sc.deadline[sc.starts[g]..sc.starts[g + 1]],
                        topo,
                        load,
                    );
                    sc.rank.push(self.weight_of(sc.keys[g]) * tau);
                }
                let GroupCsr {
                    keys, order, rank, ..
                } = sc;
                order.sort_by(|&a, &b| rank[b].total_cmp(&rank[a]).then(keys[a].cmp(&keys[b])));
            }
            InterOrder::LeastWork => {
                sc.rank.clear();
                for g in 0..groups {
                    sc.rank.push(Self::isolation_gamma_csr(
                        flows,
                        &sc.pos[sc.starts[g]..sc.starts[g + 1]],
                        topo,
                        load,
                    ));
                }
                let GroupCsr {
                    keys, order, rank, ..
                } = sc;
                order.sort_by(|&a, &b| rank[a].total_cmp(&rank[b]).then(keys[a].cmp(&keys[b])));
            }
            InterOrder::StageLeastWork => {
                sc.rank.clear();
                sc.rank_time.clear();
                for g in 0..groups {
                    let pos = &sc.pos[sc.starts[g]..sc.starts[g + 1]];
                    let deadline = &sc.deadline[sc.starts[g]..sc.starts[g + 1]];
                    let head_deadline = deadline[0];
                    let stage_len = deadline
                        .iter()
                        .take_while(|d| d.approx_eq(head_deadline))
                        .count();
                    sc.rank.push(Self::isolation_gamma_csr(
                        flows,
                        &pos[..stage_len],
                        topo,
                        load,
                    ));
                    sc.rank_time.push(head_deadline);
                }
                let GroupCsr {
                    keys,
                    order,
                    rank,
                    rank_time,
                    ..
                } = sc;
                order.sort_by(|&a, &b| {
                    rank[a]
                        .total_cmp(&rank[b])
                        .then(rank_time[a].cmp(&rank_time[b]))
                        .then(keys[a].cmp(&keys[b]))
                });
            }
            InterOrder::EarliestDeadline => {
                sc.rank_time.clear();
                for g in 0..groups {
                    sc.rank_time.push(sc.deadline[sc.starts[g]]);
                }
                let GroupCsr {
                    keys,
                    order,
                    rank_time,
                    ..
                } = sc;
                order.sort_by(|&a, &b| rank_time[a].cmp(&rank_time[b]).then(keys[a].cmp(&keys[b])));
            }
            InterOrder::Bssi => {
                // Non-default ablation: keep the map-based load build (the
                // BSSI solve itself dominates). Accumulate in ascending id
                // order — member positions index the id-sorted flow slice,
                // so sorting positions ascending is ascending id order —
                // to match the naive path's float summation bit-for-bit.
                let mut key_for_id = BTreeMap::new();
                let loads: Vec<GroupLoad> = (0..groups)
                    .map(|g| {
                        let id = EchelonId(g as u64);
                        key_for_id.insert(id, g);
                        let mut by_id: Vec<usize> = sc.pos[sc.starts[g]..sc.starts[g + 1]].to_vec();
                        by_id.sort_unstable();
                        let mut load = BTreeMap::new();
                        for p in by_id {
                            let v = &flows[p];
                            for r in &v.route {
                                *load.entry(r.0).or_insert(0.0) += v.remaining / topo.capacity(*r);
                            }
                        }
                        GroupLoad {
                            id,
                            weight: self.weight_of(sc.keys[g]),
                            load,
                        }
                    })
                    .collect();
                sc.order.clear();
                sc.order
                    .extend(bssi_order(&loads).into_iter().map(|id| key_for_id[&id]));
            }
        }
    }

    /// MADD over one deadline-stage given as CSR member positions: the
    /// flat mirror of [`Self::serve_stage`], with the per-link byte sums
    /// in the reusable [`LinkLoad`] (gamma folds over the ascending
    /// touched-link list, exactly the map iteration order) and member
    /// positions used directly instead of re-finding each flow by binary
    /// search.
    fn serve_stage_csr(
        stage: &[usize],
        flows: &[ActiveFlowView],
        residual: &mut [f64],
        rates: &mut [f64],
        caps: Option<&[f64]>,
        load: &mut LinkLoad,
    ) {
        load.begin(residual.len());
        for &p in stage {
            let v = &flows[p];
            for r in &v.route {
                load.add(*r, v.remaining);
            }
        }
        load.sort_touched();
        let mut gamma: f64 = 0.0;
        for i in 0..load.touched().len() {
            let r = load.touched()[i];
            let res = residual[r.0 as usize];
            if res <= EPS {
                gamma = f64::INFINITY;
                break;
            }
            gamma = gamma.max(load.get(r) / res);
        }
        if !gamma.is_finite() || gamma <= EPS {
            return;
        }
        for &p in stage {
            let v = &flows[p];
            let mut rate = v.remaining / gamma;
            if let Some(caps) = caps {
                rate = rate.min(caps[p]);
            }
            rates[p] = rate;
            for r in &v.route {
                residual[r.0 as usize] = (residual[r.0 as usize] - rate).max(0.0);
            }
        }
    }

    /// Serving pass over the flat group structure: the allocation-free
    /// mirror of [`Self::serve`]. Equalize caps land in a dense per-flow
    /// buffer written just before each group's stages are served (entries
    /// of other groups are stale and never read).
    #[allow(clippy::too_many_arguments)]
    fn serve_csr(
        &self,
        now: SimTime,
        flows: &[ActiveFlowView],
        topo: &Topology,
        ws: &mut AllocScratch,
        sc: &mut GroupCsr<GroupKey>,
        load: &mut LinkLoad,
        rates: &mut Vec<f64>,
    ) {
        debug_assert!(flows.windows(2).all(|w| w[0].id < w[1].id));
        topo.capacities_into(&mut sc.residual);
        rates.clear();
        rates.resize(flows.len(), 0.0);

        for oi in 0..sc.order.len() {
            let g = sc.order[oi];
            let (start, end) = (sc.starts[g], sc.starts[g + 1]);
            let use_caps = match self.intra {
                IntraMode::FinishEarly => false,
                IntraMode::Equalize => {
                    let tau = Self::projected_tardiness_csr(
                        now,
                        flows,
                        &sc.pos[start..end],
                        &sc.deadline[start..end],
                        topo,
                        load,
                    )
                    .max(0.0);
                    if sc.caps.len() < flows.len() {
                        sc.caps.resize(flows.len(), f64::INFINITY);
                    }
                    for m in start..end {
                        let p = sc.pos[m];
                        let target = sc.deadline[m].secs() + tau;
                        let horizon = (target - now.secs()).max(EPS);
                        sc.caps[p] = flows[p].remaining / horizon;
                    }
                    true
                }
            };
            // Partition into deadline stages (EDD order is already
            // sorted) and MADD each stage against the residual.
            let mut i = start;
            while i < end {
                let d = sc.deadline[i];
                let mut j = i;
                while j < end && sc.deadline[j].approx_eq(d) {
                    j += 1;
                }
                Self::serve_stage_csr(
                    &sc.pos[i..j],
                    flows,
                    &mut sc.residual,
                    rates,
                    use_caps.then_some(&sc.caps),
                    load,
                );
                i = j;
            }
        }

        if self.backfill {
            // The MADD rates become the waterfill floor in place: leftover
            // capacity is shared max-min on top of them.
            waterfill_dense(topo, flows, None, None, rates, ws);
        }
    }

    /// Allocation from the cached group structure maintained by
    /// [`Self::apply_delta`]. Requires `flows` sorted by ascending id (the
    /// fluid network's view order). Observationally identical to the naive
    /// [`RatePolicy::allocate`]; if the cache does not cover the active
    /// set (a missed delta), it is rebuilt from scratch first.
    pub fn allocate_cached(
        &mut self,
        now: SimTime,
        flows: &[ActiveFlowView],
        topo: &Topology,
    ) -> RateAlloc {
        let mut ws = AllocScratch::new();
        let mut out = Vec::new();
        self.allocate_cached_dense(now, flows, topo, &mut ws, &mut out);
        dense_to_alloc(flows, &out)
    }

    /// [`Self::allocate_cached`] writing the dense allocation (indexed
    /// like the id-sorted `flows`) into `out` instead of building a map.
    pub fn allocate_cached_dense(
        &mut self,
        now: SimTime,
        flows: &[ActiveFlowView],
        topo: &Topology,
        ws: &mut AllocScratch,
        out: &mut Vec<f64>,
    ) {
        debug_assert!(flows.windows(2).all(|w| w[0].id < w[1].id));
        if !self.cache_consistent(flows) {
            self.rebuild_cache(now, flows);
        }
        let mut sc = std::mem::take(&mut self.scratch);
        let mut load = std::mem::take(&mut self.load);
        self.build_csr(flows, &mut sc);
        self.order_groups(now, flows, topo, &mut sc, &mut load);
        self.serve_csr(now, flows, topo, ws, &mut sc, &mut load, out);
        self.scratch = sc;
        self.load = load;
    }

    /// Flattens the cached member lists into the CSR workspace, resolving
    /// each member's position in the id-sorted flow slice once. Groups
    /// land in ascending key order (the member cache's `BTreeMap`
    /// iteration order), members in their cached EDD order.
    fn build_csr(&self, flows: &[ActiveFlowView], sc: &mut GroupCsr<GroupKey>) {
        sc.clear_groups();
        for (k, list) in &self.cached_members {
            sc.keys.push(*k);
            for &(deadline, id) in list {
                let idx = flows
                    .binary_search_by(|v| v.id.cmp(&id))
                    .expect("cached flow is active");
                sc.pos.push(idx);
                sc.deadline.push(deadline);
            }
            sc.starts.push(sc.pos.len());
        }
    }
}

impl RatePolicy for EchelonMadd {
    fn allocate(&mut self, now: SimTime, flows: &[ActiveFlowView], topo: &Topology) -> RateAlloc {
        let mut ws = AllocScratch::new();
        let mut out = Vec::new();
        self.allocate_dense(now, flows, topo, &mut ws, &mut out);
        dense_to_alloc(flows, &out)
    }

    fn allocate_dense(
        &mut self,
        now: SimTime,
        flows: &[ActiveFlowView],
        topo: &Topology,
        ws: &mut AllocScratch,
        out: &mut Vec<f64>,
    ) {
        self.book.observe(now, flows);

        let mut groups: BTreeMap<GroupKey, Vec<&ActiveFlowView>> = BTreeMap::new();
        for v in flows {
            groups.entry(self.group_of(v.id)).or_default().push(v);
        }
        let order = self.serve_order(now, &groups, topo);
        let members_of: BTreeMap<GroupKey, Vec<Member<'_>>> = groups
            .iter()
            .map(|(k, vs)| (*k, self.members(*k, vs)))
            .collect();
        self.serve(now, &order, &members_of, flows, topo, ws, out);
    }

    fn allocate_incremental(
        &mut self,
        now: SimTime,
        flows: &[ActiveFlowView],
        delta: &FlowDelta,
        topo: &Topology,
    ) -> RateAlloc {
        self.apply_delta(now, flows, delta);
        self.allocate_cached(now, flows, topo)
    }

    fn allocate_dense_incremental(
        &mut self,
        now: SimTime,
        flows: &[ActiveFlowView],
        delta: &FlowDelta,
        topo: &Topology,
        ws: &mut AllocScratch,
        out: &mut Vec<f64>,
    ) {
        self.apply_delta(now, flows, delta);
        self.allocate_cached_dense(now, flows, topo, ws, out);
    }

    fn name(&self) -> &'static str {
        match (self.inter, self.intra) {
            (InterOrder::EarliestDeadline, IntraMode::FinishEarly) => "echelon-madd",
            (InterOrder::EarliestDeadline, IntraMode::Equalize) => "echelon-madd(equalize)",
            (InterOrder::MostTardy, _) => "echelon-madd(most-tardy)",
            (InterOrder::LeastWork, _) => "echelon-madd(least-work)",
            (InterOrder::StageLeastWork, _) => "echelon-madd(stage-least-work)",
            (InterOrder::Bssi, _) => "echelon-madd(bssi)",
        }
    }

    fn book_stats(&self) -> Option<(usize, usize)> {
        Some((self.book.occupancy(), self.book.peak_occupancy()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echelon_core::arrangement::ArrangementFn;
    use echelon_core::echelon::FlowRef;
    use echelon_core::JobId;
    use echelon_simnet::flow::FlowDemand;
    use echelon_simnet::ids::NodeId;
    use echelon_simnet::runner::run_flows;

    fn fr(id: u64, src: u32, dst: u32, size: f64) -> FlowRef {
        FlowRef::new(FlowId(id), NodeId(src), NodeId(dst), size)
    }

    fn demand(id: u64, src: u32, dst: u32, size: f64, release: f64) -> FlowDemand {
        FlowDemand::new(
            FlowId(id),
            NodeId(src),
            NodeId(dst),
            size,
            SimTime::new(release),
        )
    }

    fn fig2_echelon() -> EchelonFlow {
        EchelonFlow::from_flows(
            EchelonId(0),
            JobId(0),
            vec![fr(0, 0, 1, 2.0), fr(1, 0, 1, 2.0), fr(2, 0, 1, 2.0)],
            ArrangementFn::Staggered { gap: 1.0 },
        )
    }

    fn fig2_demands() -> Vec<FlowDemand> {
        vec![
            demand(0, 0, 1, 2.0, 1.0),
            demand(1, 0, 1, 2.0, 2.0),
            demand(2, 0, 1, 2.0, 3.0),
        ]
    }

    /// The EchelonFlow half of the paper's Fig. 2c: staggered full-rate
    /// transmissions finishing at t = 3, 5, 7.
    #[test]
    fn fig2c_staggered_finishes() {
        let topo = Topology::chain(2, 1.0);
        let mut policy = EchelonMadd::new(vec![fig2_echelon()]);
        let out = run_flows(&topo, fig2_demands(), &mut policy);
        assert!(out.finish(FlowId(0)).unwrap().approx_eq(SimTime::new(3.0)));
        assert!(out.finish(FlowId(1)).unwrap().approx_eq(SimTime::new(5.0)));
        assert!(out.finish(FlowId(2)).unwrap().approx_eq(SimTime::new(7.0)));
    }

    /// On a single resource the scheduler achieves the EDD-optimal maximum
    /// tardiness (Jackson's rule): for Fig. 2 that is 4.
    #[test]
    fn fig2c_max_tardiness_is_edd_optimal() {
        let topo = Topology::chain(2, 1.0);
        let mut policy = EchelonMadd::new(vec![fig2_echelon()]);
        let out = run_flows(&topo, fig2_demands(), &mut policy);
        // Ideal finishes with r = 1, T = 1: d = 1, 2, 3.
        let tardiness = [
            out.finish(FlowId(0)).unwrap().secs() - 1.0,
            out.finish(FlowId(1)).unwrap().secs() - 2.0,
            out.finish(FlowId(2)).unwrap().secs() - 3.0,
        ];
        let max = tardiness.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        assert!((max - 4.0).abs() < 1e-9, "max tardiness {max}");
    }

    /// Degenerate input (Coflow arrangement): EchelonMadd reproduces
    /// Varys' simultaneous finish at t = 7 (Property 2 / Property 4).
    #[test]
    fn coflow_compliant_input_recovers_varys() {
        let topo = Topology::chain(2, 1.0);
        let h = EchelonFlow::from_flows(
            EchelonId(0),
            JobId(0),
            vec![fr(0, 0, 1, 2.0), fr(1, 0, 1, 2.0), fr(2, 0, 1, 2.0)],
            ArrangementFn::Coflow,
        );
        let mut policy = EchelonMadd::new(vec![h]);
        let out = run_flows(&topo, fig2_demands(), &mut policy);
        for id in [FlowId(0), FlowId(1), FlowId(2)] {
            assert!(
                out.finish(id).unwrap().approx_eq(SimTime::new(7.0)),
                "flow {id} at {:?}",
                out.finish(id)
            );
        }
    }

    /// Equalize mode shapes rates toward d_j + τ* instead of finishing
    /// early; the head flow is *delayed* relative to FinishEarly but the
    /// last flow still finishes at 7 and max tardiness stays 4.
    #[test]
    fn equalize_mode_constant_tardiness() {
        let topo = Topology::chain(2, 1.0);
        let mut policy = EchelonMadd::new(vec![fig2_echelon()]).with_intra(IntraMode::Equalize);
        let out = run_flows(&topo, fig2_demands(), &mut policy);
        let e2 = out.finish(FlowId(2)).unwrap();
        assert!(e2.at_or_before(SimTime::new(7.0 + 1e-6)), "e2 = {e2:?}");
        // Work conservation: total bytes 6 over a unit link starting at
        // t = 1 cannot finish before 7 either.
        assert!(SimTime::new(7.0 - 1e-6).at_or_before(e2));
    }

    #[test]
    fn solo_flows_default_edf_ties_by_id() {
        let topo = Topology::chain(2, 1.0);
        let mut policy = EchelonMadd::new(vec![]);
        let out = run_flows(
            &topo,
            vec![demand(0, 0, 1, 3.0, 0.0), demand(1, 0, 1, 1.0, 0.0)],
            &mut policy,
        );
        // Solo deadlines are the (equal) release times; the EDF tie
        // breaks by group key, so f0 runs first.
        assert!(out.finish(FlowId(0)).unwrap().approx_eq(SimTime::new(3.0)));
        assert!(out.finish(FlowId(1)).unwrap().approx_eq(SimTime::new(4.0)));
    }

    #[test]
    fn least_work_order_prefers_short_group() {
        let topo = Topology::chain(2, 1.0);
        let mut policy = EchelonMadd::new(vec![]).with_inter(InterOrder::LeastWork);
        let out = run_flows(
            &topo,
            vec![demand(0, 0, 1, 3.0, 0.0), demand(1, 0, 1, 1.0, 0.0)],
            &mut policy,
        );
        assert!(out.finish(FlowId(1)).unwrap().approx_eq(SimTime::new(1.0)));
        assert!(out.finish(FlowId(0)).unwrap().approx_eq(SimTime::new(4.0)));
    }

    #[test]
    fn most_tardy_order_prefers_long_group() {
        let topo = Topology::chain(2, 1.0);
        let mut policy = EchelonMadd::new(vec![]).with_inter(InterOrder::MostTardy);
        let out = run_flows(
            &topo,
            vec![demand(0, 0, 1, 3.0, 0.0), demand(1, 0, 1, 1.0, 0.0)],
            &mut policy,
        );
        // Both solo: projected tardiness = projected FCT; the long flow
        // is "most tardy" and goes first under this ordering.
        assert!(out.finish(FlowId(0)).unwrap().approx_eq(SimTime::new(3.0)));
        assert!(out.finish(FlowId(1)).unwrap().approx_eq(SimTime::new(4.0)));
    }

    #[test]
    fn two_pipelines_share_fairly_by_tardiness() {
        // Two identical pipeline EchelonFlows on disjoint source links
        // but a shared destination ingress: the scheduler must interleave
        // them without starving either.
        let topo = Topology::big_switch_uniform(3, 1.0);
        let h0 = EchelonFlow::from_flows(
            EchelonId(0),
            JobId(0),
            vec![fr(0, 0, 2, 1.0), fr(1, 0, 2, 1.0)],
            ArrangementFn::Staggered { gap: 1.0 },
        );
        let h1 = EchelonFlow::from_flows(
            EchelonId(1),
            JobId(1),
            vec![fr(10, 1, 2, 1.0), fr(11, 1, 2, 1.0)],
            ArrangementFn::Staggered { gap: 1.0 },
        );
        let mut policy = EchelonMadd::new(vec![h0, h1]);
        let out = run_flows(
            &topo,
            vec![
                demand(0, 0, 2, 1.0, 0.0),
                demand(1, 0, 2, 1.0, 1.0),
                demand(10, 1, 2, 1.0, 0.0),
                demand(11, 1, 2, 1.0, 1.0),
            ],
            &mut policy,
        );
        // All four must finish by 4 (total 4 bytes through the shared
        // ingress) and each pipeline's last flow no earlier than 2.
        let last = out.makespan();
        assert!(last.approx_eq(SimTime::new(4.0)), "makespan {last:?}");
        for id in [FlowId(0), FlowId(1), FlowId(10), FlowId(11)] {
            assert!(out.finish(id).is_some());
        }
    }

    #[test]
    fn backfill_off_leaves_slack() {
        // One echelon on one link; second solo flow on a disjoint link
        // still runs (it is its own group), but backfill-off means the
        // echelon's later stages do not exceed their MADD rates.
        let topo = Topology::chain(2, 1.0);
        let mut policy = EchelonMadd::new(vec![fig2_echelon()]).with_backfill(false);
        let out = run_flows(&topo, fig2_demands(), &mut policy);
        assert!(out.finish(FlowId(2)).unwrap().approx_eq(SimTime::new(7.0)));
    }

    /// The incremental path must be bit-identical to the naive one across
    /// every inter/intra combination (the broad differential sweep lives
    /// in `tests/differential.rs` at the workspace root).
    #[test]
    fn incremental_path_matches_naive() {
        use echelon_simnet::runner::{run_flows_with, RecomputeMode};
        let topo = Topology::big_switch_uniform(3, 1.0);
        let make = |inter, intra| {
            let h0 = fig2_echelon();
            let h1 = EchelonFlow::from_flows(
                EchelonId(1),
                JobId(1),
                vec![fr(10, 1, 2, 1.0), fr(11, 1, 2, 2.0)],
                ArrangementFn::Staggered { gap: 0.5 },
            );
            EchelonMadd::new(vec![h0, h1])
                .with_inter(inter)
                .with_intra(intra)
        };
        let mut demands = fig2_demands();
        demands.push(demand(10, 1, 2, 1.0, 0.5));
        demands.push(demand(11, 1, 2, 2.0, 1.5));
        demands.push(demand(20, 2, 0, 0.7, 0.2)); // solo flow
        for inter in [
            InterOrder::MostTardy,
            InterOrder::LeastWork,
            InterOrder::StageLeastWork,
            InterOrder::EarliestDeadline,
            InterOrder::Bssi,
        ] {
            for intra in [IntraMode::FinishEarly, IntraMode::Equalize] {
                let a = run_flows(&topo, demands.clone(), &mut make(inter, intra));
                let b = run_flows_with(
                    &topo,
                    demands.clone(),
                    &mut make(inter, intra),
                    RecomputeMode::Incremental,
                );
                assert_eq!(
                    a.trace().events(),
                    b.trace().events(),
                    "trace mismatch for {inter:?}/{intra:?}"
                );
            }
        }
    }

    #[test]
    fn earliest_deadline_inter_order() {
        let topo = Topology::chain(2, 1.0);
        let h0 = EchelonFlow::from_flows(
            EchelonId(0),
            JobId(0),
            vec![fr(0, 0, 1, 2.0)],
            ArrangementFn::Coflow,
        );
        let h1 = EchelonFlow::from_flows(
            EchelonId(1),
            JobId(1),
            vec![fr(1, 0, 1, 2.0)],
            ArrangementFn::Coflow,
        );
        let mut policy = EchelonMadd::new(vec![h0, h1]).with_inter(InterOrder::EarliestDeadline);
        let out = run_flows(
            &topo,
            vec![demand(0, 0, 1, 2.0, 0.0), demand(1, 0, 1, 2.0, 0.5)],
            &mut policy,
        );
        // h0's deadline (reference 0) precedes h1's (reference 0.5).
        assert!(out.finish(FlowId(0)).unwrap().approx_eq(SimTime::new(2.0)));
        assert!(out.finish(FlowId(1)).unwrap().approx_eq(SimTime::new(4.0)));
    }
}
