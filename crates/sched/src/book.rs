//! Shared EchelonFlow bookkeeping for schedulers.
//!
//! Schedulers are constructed with the declared EchelonFlows of the
//! workload (the paper's agents report them before their flows start,
//! §5). At allocation time the book:
//!
//! - binds each EchelonFlow's **reference time** the first time one of its
//!   flows becomes active (Definition 3.1: `r = s_0`, the head flow's
//!   start time — the runner recomputes rates at every release, so "first
//!   seen active" is exactly the head flow's start);
//! - resolves per-flow **ideal finish times** through the arrangement
//!   function;
//! - projects each EchelonFlow's **tardiness under isolation**, the
//!   quantity Property 4 ranks by.

use echelon_core::echelon::EchelonFlow;
use echelon_core::EchelonId;
use echelon_simnet::flow::ActiveFlowView;
use echelon_simnet::fluid::FlowDelta;
use echelon_simnet::ids::FlowId;
use echelon_simnet::time::SimTime;
use echelon_simnet::topology::Topology;
use std::collections::BTreeMap;

/// Registry of declared EchelonFlows with lazy reference binding.
///
/// The book supports an open-loop lifecycle: EchelonFlows may be
/// [`Self::register`]ed as their jobs are admitted and [`Self::evict`]ed
/// once every member flow has finished, keeping occupancy proportional to
/// *live* jobs rather than all jobs ever seen. [`Self::peak_occupancy`]
/// is the memory-bound witness asserted by the open-loop drives.
#[derive(Debug, Clone)]
pub struct EchelonBook {
    echelons: BTreeMap<EchelonId, EchelonFlow>,
    by_flow: BTreeMap<FlowId, EchelonId>,
    peak_occupancy: usize,
}

impl EchelonBook {
    /// Builds a book from declared EchelonFlows.
    ///
    /// # Panics
    ///
    /// Panics if two EchelonFlows share an id or claim the same flow.
    pub fn new(echelons: Vec<EchelonFlow>) -> EchelonBook {
        let mut map = BTreeMap::new();
        let mut by_flow = BTreeMap::new();
        for h in echelons {
            for f in h.flows() {
                let prev = by_flow.insert(f.id, h.id());
                assert!(prev.is_none(), "flow {} claimed by two EchelonFlows", f.id);
            }
            let id = h.id();
            let prev = map.insert(id, h);
            assert!(prev.is_none(), "duplicate EchelonFlow id {id}");
        }
        let peak = map.len();
        EchelonBook {
            echelons: map,
            by_flow,
            peak_occupancy: peak,
        }
    }

    /// Registers one more EchelonFlow into a live book (open-loop
    /// admission). Registration any time before the EchelonFlow's head
    /// flow is released is allocation-neutral: an echelon with no active
    /// member flows contributes nothing to any serve order.
    ///
    /// # Panics
    ///
    /// Panics if the id or any member flow is already claimed.
    pub fn register(&mut self, echelon: EchelonFlow) {
        for f in echelon.flows() {
            let prev = self.by_flow.insert(f.id, echelon.id());
            assert!(prev.is_none(), "flow {} claimed by two EchelonFlows", f.id);
        }
        let id = echelon.id();
        let prev = self.echelons.insert(id, echelon);
        assert!(prev.is_none(), "duplicate EchelonFlow id {id}");
        self.peak_occupancy = self.peak_occupancy.max(self.echelons.len());
    }

    /// Evicts a completed EchelonFlow (open-loop retirement), refusing —
    /// returning `false` and leaving the book untouched — when any member
    /// flow is still in `active`. Evicting only after the last member
    /// completion is allocation-neutral: a departed flow is never
    /// consulted again, so dropping its group changes no later decision.
    /// Unknown ids are a no-op returning `false`.
    pub fn evict(&mut self, id: EchelonId, active: &[ActiveFlowView]) -> bool {
        let Some(h) = self.echelons.get(&id) else {
            return false;
        };
        if active.iter().any(|v| h.contains(v.id)) {
            return false;
        }
        let h = self.echelons.remove(&id).expect("checked above");
        for f in h.flows() {
            self.by_flow.remove(&f.id);
        }
        true
    }

    /// Number of EchelonFlows currently registered.
    pub fn occupancy(&self) -> usize {
        self.echelons.len()
    }

    /// High-water mark of registered EchelonFlows over the book's life.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Binds reference times for every EchelonFlow whose first flow has
    /// just appeared. Call at the top of each allocation.
    ///
    /// This full scan over the active slice is the Full-mode reference;
    /// the incremental path uses [`Self::observe_delta`], which binds from
    /// the arrivals alone.
    pub fn observe(&mut self, now: SimTime, active: &[ActiveFlowView]) {
        for v in active {
            self.observe_one(now, v);
        }
    }

    fn observe_one(&mut self, now: SimTime, v: &ActiveFlowView) {
        if let Some(hid) = self.by_flow.get(&v.id) {
            let h = self.echelons.get_mut(hid).expect("indexed echelon");
            if h.reference().is_none() {
                // The head flow starts the EchelonFlow; if rates are
                // recomputed at every release, the first observation of
                // any member flow is the head's start. Use the flow's
                // own release time to be robust to batched releases.
                h.bind_reference(v.release.min(now));
            }
        }
    }

    /// Delta-driven variant of [`Self::observe`]: binds references only
    /// for the flows that just arrived, so reference maintenance costs
    /// O(arrivals · log flows) per allocation instead of O(active flows).
    /// `active` is the id-sorted active slice; arrivals no longer in it
    /// (released and finished within one drain) are skipped — such a flow
    /// can never be the *first* observation of a live EchelonFlow the full
    /// scan would have bound.
    ///
    /// Debug builds re-run the full scan on a copy and assert both paths
    /// bound the same references, so an unreported arrival cannot
    /// silently diverge from the Full mode.
    pub fn observe_delta(&mut self, now: SimTime, active: &[ActiveFlowView], delta: &FlowDelta) {
        if !delta.arrived.is_empty() {
            // Ascending id order: binding is first-touch, and the full
            // scan observes the id-sorted slice — same member must win
            // when several flows of one EchelonFlow arrive together.
            let mut arrived = delta.arrived.clone();
            arrived.sort_unstable();
            for id in arrived {
                if let Ok(idx) = active.binary_search_by(|v| v.id.cmp(&id)) {
                    self.observe_one(now, &active[idx]);
                }
            }
        }
        #[cfg(debug_assertions)]
        {
            let mut full = self.clone();
            full.observe(now, active);
            let bound = |b: &EchelonBook| -> Vec<(EchelonId, Option<SimTime>)> {
                b.echelons
                    .iter()
                    .map(|(id, h)| (*id, h.reference()))
                    .collect()
            };
            assert_eq!(
                bound(self),
                bound(&full),
                "delta-driven reference binding diverged from the full scan at {now:?}"
            );
        }
    }

    /// The EchelonFlow a flow belongs to.
    pub fn echelon_of(&self, flow: FlowId) -> Option<&EchelonFlow> {
        self.by_flow.get(&flow).and_then(|id| self.echelons.get(id))
    }

    /// Ideal finish time of a flow, if it belongs to a *bound*
    /// EchelonFlow.
    pub fn ideal_finish(&self, flow: FlowId) -> Option<SimTime> {
        let h = self.echelon_of(flow)?;
        h.reference()?;
        h.ideal_finish_of_flow(flow)
    }

    /// All registered EchelonFlows in id order.
    pub fn echelons(&self) -> impl Iterator<Item = &EchelonFlow> {
        self.echelons.values()
    }

    /// Look up by id.
    pub fn get(&self, id: EchelonId) -> Option<&EchelonFlow> {
        self.echelons.get(&id)
    }

    /// Projects the tardiness (Eq. 2) EchelonFlow `id` would accumulate if
    /// it ran **alone** on the network from `now`: its active flows are
    /// served earliest-due-date at full capacity per resource, and the
    /// projected tardiness is the max over resources of the max over EDD
    /// prefixes of `now + cumulative_bytes / capacity − d_j`.
    ///
    /// This is the tardiness analog of Varys' bottleneck Γ and the ranking
    /// key of Property 4's inter-EchelonFlow step. Returns `None` when no
    /// member flow is active.
    pub fn projected_tardiness(
        &self,
        id: EchelonId,
        now: SimTime,
        active: &[ActiveFlowView],
        topo: &Topology,
    ) -> Option<f64> {
        let h = self.echelons.get(&id)?;
        h.reference()?;
        // Member active flows with their deadlines, EDD order.
        let mut members: Vec<(&ActiveFlowView, SimTime)> = active
            .iter()
            .filter(|v| h.contains(v.id))
            .map(|v| (v, h.ideal_finish_of_flow(v.id).expect("member flow")))
            .collect();
        if members.is_empty() {
            return None;
        }
        members.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.id.cmp(&b.0.id)));
        let mut worst = f64::NEG_INFINITY;
        // Per resource: cumulative load of the EDD prefix.
        let mut per_resource: BTreeMap<u32, f64> = BTreeMap::new();
        for (v, d) in &members {
            for r in &v.route {
                *per_resource.entry(r.0).or_insert(0.0) += v.remaining / topo.capacity(*r);
            }
            // Finishing this flow requires at least the heaviest prefix
            // among the resources it traverses.
            let finish_lb = v
                .route
                .iter()
                .map(|r| per_resource[&r.0])
                .fold(0.0f64, f64::max);
            worst = worst.max(now.secs() + finish_lb - d.secs());
        }
        Some(worst)
    }

    /// Total remaining bytes of a bound EchelonFlow's active flows.
    pub fn remaining_bytes(&self, id: EchelonId, active: &[ActiveFlowView]) -> f64 {
        match self.echelons.get(&id) {
            Some(h) => active
                .iter()
                .filter(|v| h.contains(v.id))
                .map(|v| v.remaining)
                .sum(),
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echelon_core::arrangement::ArrangementFn;
    use echelon_core::echelon::FlowRef;
    use echelon_core::JobId;
    use echelon_simnet::ids::NodeId;

    fn fr(id: u64, size: f64) -> FlowRef {
        FlowRef::new(FlowId(id), NodeId(0), NodeId(1), size)
    }

    fn view(id: u64, size: f64, remaining: f64, release: f64, topo: &Topology) -> ActiveFlowView {
        ActiveFlowView {
            id: FlowId(id),
            src: NodeId(0),
            dst: NodeId(1),
            size,
            remaining,
            release: SimTime::new(release),
            route: topo.route(NodeId(0), NodeId(1)),
            slot: id as u32,
        }
    }

    fn pipeline_book() -> EchelonBook {
        EchelonBook::new(vec![EchelonFlow::from_flows(
            EchelonId(0),
            JobId(0),
            vec![fr(0, 2.0), fr(1, 2.0), fr(2, 2.0)],
            ArrangementFn::Staggered { gap: 1.0 },
        )])
    }

    #[test]
    fn observe_binds_reference_to_head_release() {
        let topo = Topology::chain(2, 1.0);
        let mut book = pipeline_book();
        assert!(book.ideal_finish(FlowId(0)).is_none());
        let active = vec![view(0, 2.0, 2.0, 1.0, &topo)];
        book.observe(SimTime::new(1.0), &active);
        assert!(book
            .ideal_finish(FlowId(0))
            .unwrap()
            .approx_eq(SimTime::new(1.0)));
        assert!(book
            .ideal_finish(FlowId(2))
            .unwrap()
            .approx_eq(SimTime::new(3.0)));
    }

    #[test]
    fn observe_is_idempotent() {
        let topo = Topology::chain(2, 1.0);
        let mut book = pipeline_book();
        let active = vec![view(0, 2.0, 2.0, 1.0, &topo)];
        book.observe(SimTime::new(1.0), &active);
        // Later observations with more flows must not move the reference.
        let later = vec![view(0, 2.0, 1.0, 1.0, &topo), view(1, 2.0, 2.0, 2.0, &topo)];
        book.observe(SimTime::new(2.0), &later);
        assert_eq!(
            book.get(EchelonId(0)).unwrap().reference(),
            Some(SimTime::new(1.0))
        );
    }

    #[test]
    fn observe_delta_binds_like_full_scan() {
        let topo = Topology::chain(2, 1.0);
        let mut by_delta = pipeline_book();
        let mut by_scan = pipeline_book();
        // Flows 1 and 0 arrive in the same drain, reported out of id
        // order: first-touch binding must still pick the same member the
        // id-ordered full scan would.
        let active = vec![view(0, 2.0, 2.0, 1.5, &topo), view(1, 2.0, 2.0, 1.0, &topo)];
        let delta = FlowDelta {
            arrived: vec![FlowId(1), FlowId(0)],
            departed: vec![],
        };
        by_delta.observe_delta(SimTime::new(1.5), &active, &delta);
        by_scan.observe(SimTime::new(1.5), &active);
        assert_eq!(
            by_delta.get(EchelonId(0)).unwrap().reference(),
            by_scan.get(EchelonId(0)).unwrap().reference(),
        );
    }

    #[test]
    fn observe_delta_skips_arrivals_already_gone() {
        let topo = Topology::chain(2, 1.0);
        let mut book = pipeline_book();
        // Flow 0 arrived and departed within one drain: it is in the
        // delta but not in the active slice, so nothing binds.
        let active = vec![view(99, 2.0, 2.0, 1.0, &topo)]; // non-member
        let delta = FlowDelta {
            arrived: vec![FlowId(0)],
            departed: vec![FlowId(0)],
        };
        book.observe_delta(SimTime::new(1.0), &active, &delta);
        assert!(book.get(EchelonId(0)).unwrap().reference().is_none());
    }

    #[test]
    fn observe_delta_empty_is_noop() {
        let topo = Topology::chain(2, 1.0);
        let mut book = pipeline_book();
        let active = vec![view(0, 2.0, 2.0, 1.0, &topo)];
        book.observe(SimTime::new(1.0), &active);
        // A later empty delta must not move the bound reference.
        book.observe_delta(SimTime::new(5.0), &active, &FlowDelta::default());
        assert_eq!(
            book.get(EchelonId(0)).unwrap().reference(),
            Some(SimTime::new(1.0))
        );
    }

    #[test]
    fn projected_tardiness_matches_fig2_hand_calc() {
        // Fig. 2 geometry at t = 3 with all three 2B flows released on a
        // B = 1 link and nothing sent yet: EDD prefixes finish at 5, 7, 9
        // against deadlines 1, 2, 3 → projected tardiness = max(4, 5, 6).
        let topo = Topology::chain(2, 1.0);
        let mut book = pipeline_book();
        let active = vec![
            view(0, 2.0, 2.0, 1.0, &topo),
            view(1, 2.0, 2.0, 2.0, &topo),
            view(2, 2.0, 2.0, 3.0, &topo),
        ];
        book.observe(SimTime::new(1.0), &active);
        let tau = book
            .projected_tardiness(EchelonId(0), SimTime::new(3.0), &active, &topo)
            .unwrap();
        assert!((tau - 6.0).abs() < 1e-9, "tau = {tau}");
    }

    #[test]
    fn projected_tardiness_none_when_inactive() {
        let topo = Topology::chain(2, 1.0);
        let mut book = pipeline_book();
        book.observe(SimTime::ZERO, &[]);
        assert!(book
            .projected_tardiness(EchelonId(0), SimTime::ZERO, &[], &topo)
            .is_none());
    }

    #[test]
    fn remaining_bytes_sums_members_only() {
        let topo = Topology::chain(2, 1.0);
        let book = pipeline_book();
        let active = vec![
            view(0, 2.0, 1.5, 1.0, &topo),
            view(99, 2.0, 2.0, 1.0, &topo), // not a member
        ];
        assert!((book.remaining_bytes(EchelonId(0), &active) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn register_then_evict_tracks_occupancy() {
        let topo = Topology::chain(2, 1.0);
        let mut book = EchelonBook::new(vec![]);
        assert_eq!(book.occupancy(), 0);
        book.register(EchelonFlow::from_flows(
            EchelonId(0),
            JobId(0),
            vec![fr(0, 2.0)],
            ArrangementFn::Coflow,
        ));
        book.register(EchelonFlow::from_flows(
            EchelonId(1),
            JobId(1),
            vec![fr(1, 2.0)],
            ArrangementFn::Coflow,
        ));
        assert_eq!(book.occupancy(), 2);
        assert_eq!(book.peak_occupancy(), 2);
        let active = vec![view(1, 2.0, 2.0, 0.0, &topo)];
        assert!(book.evict(EchelonId(0), &active));
        assert_eq!(book.occupancy(), 1);
        // Peak is a high-water mark: eviction must not lower it.
        assert_eq!(book.peak_occupancy(), 2);
        // The evicted echelon's flows are unclaimed again.
        assert!(book.echelon_of(FlowId(0)).is_none());
    }

    #[test]
    fn evict_refused_while_member_flow_active() {
        let topo = Topology::chain(2, 1.0);
        let mut book = pipeline_book();
        // Head flow 0 is still active: eviction must refuse and leave
        // the registration untouched.
        let active = vec![view(0, 2.0, 1.0, 1.0, &topo)];
        book.observe(SimTime::new(1.0), &active);
        assert!(!book.evict(EchelonId(0), &active));
        assert_eq!(book.occupancy(), 1);
        assert!(book.echelon_of(FlowId(0)).is_some());
        // Once the member set drains, eviction succeeds.
        assert!(book.evict(EchelonId(0), &[]));
        assert_eq!(book.occupancy(), 0);
    }

    #[test]
    fn evict_unknown_id_is_noop() {
        let mut book = pipeline_book();
        assert!(!book.evict(EchelonId(99), &[]));
        assert_eq!(book.occupancy(), 1);
    }

    #[test]
    #[should_panic(expected = "claimed by two")]
    fn register_rejects_claimed_flow() {
        let mut book = pipeline_book();
        book.register(EchelonFlow::from_flows(
            EchelonId(7),
            JobId(7),
            vec![fr(0, 1.0)], // flow 0 already claimed by EchelonId(0)
            ArrangementFn::Coflow,
        ));
    }

    #[test]
    #[should_panic(expected = "claimed by two")]
    fn overlapping_echelons_rejected() {
        let h0 = EchelonFlow::from_flows(
            EchelonId(0),
            JobId(0),
            vec![fr(0, 1.0)],
            ArrangementFn::Coflow,
        );
        let h1 = EchelonFlow::from_flows(
            EchelonId(1),
            JobId(0),
            vec![fr(0, 1.0)],
            ArrangementFn::Coflow,
        );
        let _ = EchelonBook::new(vec![h0, h1]);
    }
}
