//! Varys-style Coflow scheduling: inter-coflow ordering + intra-coflow
//! MADD (the paper's Fig. 2b contender).
//!
//! MADD (Minimum Allocation for Desired Duration, Varys SIGCOMM '14) gives
//! every flow of a coflow exactly the rate that makes it finish at the
//! coflow's bottleneck completion time Γ, so all flows finish
//! *simultaneously* — the behaviour the paper shows is harmful for
//! pipeline-shaped DDLT traffic. Inter-coflow, coflows are served
//! by SEBF (smallest effective bottleneck first), BSSI (Sincronia's
//! ordering), or arrival order; unused bandwidth is backfilled for work
//! conservation.
//!
//! Rates are recomputed at every flow arrival/departure with *remaining*
//! bytes, which on the paper's Fig. 2 instance reproduces the published
//! schedule exactly: the three staggered 2B flows converge to rates
//! (B/6, B/3, B/2) and all finish at t = 7.

use crate::scratch::GroupCsr;
use crate::sincronia::{bssi_order, GroupLoad};
use echelon_core::coflow::Coflow;
use echelon_core::EchelonId;
use echelon_simnet::alloc::{dense_to_alloc, waterfill_dense, AllocScratch, RateAlloc};
use echelon_simnet::flow::ActiveFlowView;
use echelon_simnet::fluid::FlowDelta;
use echelon_simnet::ids::FlowId;
use echelon_simnet::linkindex::{LinkIndex, LinkLoad};
use echelon_simnet::runner::RatePolicy;
use echelon_simnet::time::{SimTime, EPS};
use echelon_simnet::topology::Topology;
use std::collections::BTreeMap;

/// Inter-coflow ordering discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoflowOrder {
    /// Smallest effective bottleneck (isolation Γ) first — Varys' SEBF.
    Sebf,
    /// Sincronia's BSSI primal-dual ordering.
    Bssi,
    /// Coflow arrival order (first member flow seen first).
    Arrival,
}

/// Grouping key: declared coflow or an implicit singleton for a flow that
/// belongs to no coflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum GroupKey {
    Co(EchelonId),
    Solo(FlowId),
}

/// The Varys-style coflow scheduler.
#[derive(Debug, Clone)]
pub struct VarysMadd {
    coflows: BTreeMap<EchelonId, Coflow>,
    by_flow: BTreeMap<FlowId, EchelonId>,
    order: CoflowOrder,
    backfill: bool,
    /// High-water mark of registered coflows (open-loop memory witness).
    peak_occupancy: usize,
    arrivals: BTreeMap<GroupKey, SimTime>,
    // Incremental state: id-ordered member list per active group, patched
    // by `apply_delta` and consumed by `allocate_cached`. The naive
    // `allocate` path neither reads nor writes it.
    cached_members: BTreeMap<GroupKey, Vec<FlowId>>,
    // Link-indexed adjacency over the active set, maintained from the
    // same delta stream as `cached_members` (so one consistency check
    // covers both).
    links: LinkIndex,
    // Reusable flat workspaces for the cached allocation path.
    scratch: GroupCsr<GroupKey>,
    load: LinkLoad,
}

impl VarysMadd {
    /// Creates a scheduler over the declared coflows with SEBF ordering
    /// and backfill (Varys defaults).
    ///
    /// # Panics
    ///
    /// Panics if coflows share ids or flows.
    pub fn new(coflows: Vec<Coflow>) -> VarysMadd {
        let mut map = BTreeMap::new();
        let mut by_flow = BTreeMap::new();
        for c in coflows {
            for f in c.flows() {
                let prev = by_flow.insert(f.id, c.id());
                assert!(prev.is_none(), "flow {} claimed by two coflows", f.id);
            }
            let id = c.id();
            assert!(map.insert(id, c).is_none(), "duplicate coflow id {id}");
        }
        let peak = map.len();
        VarysMadd {
            coflows: map,
            by_flow,
            order: CoflowOrder::Sebf,
            backfill: true,
            peak_occupancy: peak,
            arrivals: BTreeMap::new(),
            cached_members: BTreeMap::new(),
            links: LinkIndex::default(),
            scratch: GroupCsr::default(),
            load: LinkLoad::default(),
        }
    }

    /// Registers one more coflow into the live scheduler (open-loop
    /// admission). Allocation-neutral any time before the coflow's first
    /// flow is released: a group with no active flows is never served.
    ///
    /// # Panics
    ///
    /// Panics if the id or any member flow is already claimed.
    pub fn register(&mut self, coflow: Coflow) {
        for f in coflow.flows() {
            let prev = self.by_flow.insert(f.id, coflow.id());
            assert!(prev.is_none(), "flow {} claimed by two coflows", f.id);
        }
        let id = coflow.id();
        assert!(
            self.coflows.insert(id, coflow).is_none(),
            "duplicate coflow id {id}"
        );
        self.peak_occupancy = self.peak_occupancy.max(self.coflows.len());
    }

    /// Evicts a completed coflow, refusing (returning `false`) while any
    /// member flow is still in `active`. Evicting after the last member
    /// completion changes no later allocation: departed flows are never
    /// consulted again. Unknown ids are a no-op returning `false`.
    pub fn evict(&mut self, id: EchelonId, active: &[ActiveFlowView]) -> bool {
        if !self.coflows.contains_key(&id) {
            return false;
        }
        if active.iter().any(|v| self.by_flow.get(&v.id) == Some(&id)) {
            return false;
        }
        let c = self.coflows.remove(&id).expect("checked above");
        for f in c.flows() {
            self.by_flow.remove(&f.id);
        }
        self.arrivals.remove(&GroupKey::Co(id));
        debug_assert!(
            !self.cached_members.contains_key(&GroupKey::Co(id)),
            "evicted coflow {id} still has cached members"
        );
        true
    }

    /// Number of coflows currently registered.
    pub fn occupancy(&self) -> usize {
        self.coflows.len()
    }

    /// High-water mark of registered coflows over the scheduler's life.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Selects the inter-coflow ordering.
    pub fn with_order(mut self, order: CoflowOrder) -> VarysMadd {
        self.order = order;
        self
    }

    /// Enables/disables work-conserving backfill.
    pub fn with_backfill(mut self, backfill: bool) -> VarysMadd {
        self.backfill = backfill;
        self
    }

    fn group_of(&self, flow: FlowId) -> GroupKey {
        match self.by_flow.get(&flow) {
            Some(id) => GroupKey::Co(*id),
            None => GroupKey::Solo(flow),
        }
    }

    fn weight_of(&self, key: GroupKey) -> f64 {
        match key {
            GroupKey::Co(id) => self.coflows[&id].weight(),
            GroupKey::Solo(_) => 1.0,
        }
    }

    /// Isolation bottleneck Γ of a group: max over resources of the
    /// group's remaining seconds of occupancy.
    fn gamma(members: &[&ActiveFlowView], topo: &Topology) -> f64 {
        let mut per_resource: BTreeMap<u32, f64> = BTreeMap::new();
        for v in members {
            for r in &v.route {
                *per_resource.entry(r.0).or_insert(0.0) += v.remaining / topo.capacity(*r);
            }
        }
        per_resource.values().fold(0.0f64, |a, &b| a.max(b))
    }

    /// Computes the serve order over the currently active groups.
    fn serve_order(
        &self,
        now: SimTime,
        groups: &BTreeMap<GroupKey, Vec<&ActiveFlowView>>,
        topo: &Topology,
    ) -> Vec<GroupKey> {
        let mut keys: Vec<GroupKey> = groups.keys().copied().collect();
        match self.order {
            CoflowOrder::Sebf => {
                keys.sort_by(|a, b| {
                    let ga = Self::gamma(&groups[a], topo);
                    let gb = Self::gamma(&groups[b], topo);
                    ga.total_cmp(&gb).then(a.cmp(b))
                });
            }
            CoflowOrder::Arrival => {
                keys.sort_by(|a, b| {
                    let ta = self.arrivals.get(a).copied().unwrap_or(now);
                    let tb = self.arrivals.get(b).copied().unwrap_or(now);
                    ta.cmp(&tb).then(a.cmp(b))
                });
            }
            CoflowOrder::Bssi => {
                // Map group keys into the BSSI id space deterministically.
                let mut key_for_id = BTreeMap::new();
                let loads: Vec<GroupLoad> = keys
                    .iter()
                    .enumerate()
                    .map(|(i, &k)| {
                        let id = EchelonId(i as u64);
                        key_for_id.insert(id, k);
                        let mut load = BTreeMap::new();
                        for v in &groups[&k] {
                            for r in &v.route {
                                *load.entry(r.0).or_insert(0.0) += v.remaining / topo.capacity(*r);
                            }
                        }
                        GroupLoad {
                            id,
                            weight: self.weight_of(k),
                            load,
                        }
                    })
                    .collect();
                keys = bssi_order(&loads)
                    .into_iter()
                    .map(|id| key_for_id[&id])
                    .collect();
            }
        }
        keys
    }

    /// [`Self::gamma`] over a CSR member slice: per-link sums accumulate
    /// into the reusable [`LinkLoad`] in the same member order with the
    /// same first-touch semantics as the map build, and the max folds
    /// over the ascending touched-link list exactly as the map fold
    /// enumerates its keys — bit-identical by construction.
    fn gamma_csr(
        flows: &[ActiveFlowView],
        pos: &[usize],
        topo: &Topology,
        load: &mut LinkLoad,
    ) -> f64 {
        load.begin(topo.num_resources());
        for &p in pos {
            let v = &flows[p];
            for r in &v.route {
                load.add(*r, v.remaining / topo.capacity(*r));
            }
        }
        load.sort_touched();
        let mut gamma = 0.0f64;
        for i in 0..load.touched().len() {
            gamma = gamma.max(load.get(load.touched()[i]));
        }
        gamma
    }

    /// Inter-coflow ordering over the flat group structure: each group's
    /// ranking value is computed once into a reusable rank buffer, then
    /// `order` is sorted with a strict total order (deterministic key
    /// tie-break), yielding exactly the naive path's order.
    fn order_groups(
        &self,
        now: SimTime,
        flows: &[ActiveFlowView],
        topo: &Topology,
        sc: &mut GroupCsr<GroupKey>,
        load: &mut LinkLoad,
    ) {
        let groups = sc.keys.len();
        sc.order.clear();
        sc.order.extend(0..groups);
        match self.order {
            CoflowOrder::Sebf => {
                sc.rank.clear();
                for g in 0..groups {
                    sc.rank.push(Self::gamma_csr(
                        flows,
                        &sc.pos[sc.starts[g]..sc.starts[g + 1]],
                        topo,
                        load,
                    ));
                }
                let GroupCsr {
                    keys, order, rank, ..
                } = sc;
                order.sort_by(|&a, &b| rank[a].total_cmp(&rank[b]).then(keys[a].cmp(&keys[b])));
            }
            CoflowOrder::Arrival => {
                sc.rank_time.clear();
                for g in 0..groups {
                    sc.rank_time
                        .push(self.arrivals.get(&sc.keys[g]).copied().unwrap_or(now));
                }
                let GroupCsr {
                    keys,
                    order,
                    rank_time,
                    ..
                } = sc;
                order.sort_by(|&a, &b| rank_time[a].cmp(&rank_time[b]).then(keys[a].cmp(&keys[b])));
            }
            CoflowOrder::Bssi => {
                // Non-default ablation: keep the map-based load build (the
                // BSSI solve itself dominates). Member positions index the
                // id-sorted flow slice and the cached lists are id-sorted,
                // so the pos slice already enumerates members in ascending
                // id order — the naive path's float summation order.
                let mut key_for_id = BTreeMap::new();
                let loads: Vec<GroupLoad> = (0..groups)
                    .map(|g| {
                        let id = EchelonId(g as u64);
                        key_for_id.insert(id, g);
                        let mut load = BTreeMap::new();
                        for &p in &sc.pos[sc.starts[g]..sc.starts[g + 1]] {
                            let v = &flows[p];
                            for r in &v.route {
                                *load.entry(r.0).or_insert(0.0) += v.remaining / topo.capacity(*r);
                            }
                        }
                        GroupLoad {
                            id,
                            weight: self.weight_of(sc.keys[g]),
                            load,
                        }
                    })
                    .collect();
                sc.order.clear();
                sc.order
                    .extend(bssi_order(&loads).into_iter().map(|id| key_for_id[&id]));
            }
        }
    }

    /// Serving pass over the flat group structure: the allocation-free
    /// mirror of [`Self::serve`]. Member positions are used directly
    /// instead of re-finding each flow by binary search, and the per-link
    /// byte sums live in the reusable [`LinkLoad`] (gamma folds over the
    /// ascending touched-link list, exactly the map iteration order).
    fn serve_csr(
        &self,
        flows: &[ActiveFlowView],
        topo: &Topology,
        ws: &mut AllocScratch,
        sc: &mut GroupCsr<GroupKey>,
        load: &mut LinkLoad,
        rates: &mut Vec<f64>,
    ) {
        debug_assert!(flows.windows(2).all(|w| w[0].id < w[1].id));
        topo.capacities_into(&mut sc.residual);
        rates.clear();
        rates.resize(flows.len(), 0.0);
        for oi in 0..sc.order.len() {
            let g = sc.order[oi];
            let members = &sc.pos[sc.starts[g]..sc.starts[g + 1]];
            // Γ against residual capacity.
            load.begin(sc.residual.len());
            for &p in members {
                let v = &flows[p];
                for r in &v.route {
                    load.add(*r, v.remaining);
                }
            }
            load.sort_touched();
            let mut gamma: f64 = 0.0;
            for i in 0..load.touched().len() {
                let r = load.touched()[i];
                let res = sc.residual[r.0 as usize];
                if res <= EPS {
                    gamma = f64::INFINITY;
                    break;
                }
                gamma = gamma.max(load.get(r) / res);
            }
            if !gamma.is_finite() || gamma <= EPS {
                continue; // dense rates are already zero
            }
            for &p in members {
                let v = &flows[p];
                let rate = v.remaining / gamma;
                rates[p] = rate;
                for r in &v.route {
                    sc.residual[r.0 as usize] = (sc.residual[r.0 as usize] - rate).max(0.0);
                }
            }
        }

        if self.backfill {
            // Work conservation: flows may exceed their MADD rate using
            // leftover capacity, shared max-min — the MADD rates become
            // the waterfill floor in place.
            waterfill_dense(topo, flows, None, None, rates, ws);
        }
    }

    /// Serves pre-ordered groups: MADD against residual capacity, then
    /// optional backfill. The dense allocation (indexed like the
    /// id-sorted `flows`) lands in `rates`. Shared tail of the naive and
    /// incremental paths; member lists must be in ascending id order.
    fn serve(
        &self,
        order: &[GroupKey],
        groups: &BTreeMap<GroupKey, Vec<&ActiveFlowView>>,
        flows: &[ActiveFlowView],
        topo: &Topology,
        ws: &mut AllocScratch,
        rates: &mut Vec<f64>,
    ) {
        debug_assert!(flows.windows(2).all(|w| w[0].id < w[1].id));
        let mut residual: Vec<f64> = (0..topo.num_resources())
            .map(|r| topo.capacity(echelon_simnet::ids::ResourceId(r as u32)))
            .collect();
        rates.clear();
        rates.resize(flows.len(), 0.0);
        let idx_of = |id: FlowId| {
            flows
                .binary_search_by(|v| v.id.cmp(&id))
                .expect("served flow is active")
        };
        for key in order {
            let members = &groups[key];
            // Γ against residual capacity.
            let mut per_resource: BTreeMap<u32, f64> = BTreeMap::new();
            for v in members {
                for r in &v.route {
                    *per_resource.entry(r.0).or_insert(0.0) += v.remaining;
                }
            }
            let mut gamma: f64 = 0.0;
            for (&r, &bytes) in &per_resource {
                let res = residual[r as usize];
                if res <= EPS {
                    gamma = f64::INFINITY;
                    break;
                }
                gamma = gamma.max(bytes / res);
            }
            if !gamma.is_finite() || gamma <= EPS {
                continue; // dense rates are already zero
            }
            for v in members {
                let rate = v.remaining / gamma;
                rates[idx_of(v.id)] = rate;
                for r in &v.route {
                    residual[r.0 as usize] = (residual[r.0 as usize] - rate).max(0.0);
                }
            }
        }

        if self.backfill {
            // Work conservation: flows may exceed their MADD rate using
            // leftover capacity, shared max-min — the MADD rates become
            // the waterfill floor in place.
            waterfill_dense(topo, flows, None, None, rates, ws);
        }
    }

    /// Updates the cached group membership for the flows that arrived or
    /// departed since the previous call. `flows` is the current id-sorted
    /// active set; every arrival/departure must be reported exactly once
    /// across the sequence of calls ([`Self::allocate_cached`] self-heals
    /// from missed reports by rebuilding).
    pub fn apply_delta(&mut self, now: SimTime, flows: &[ActiveFlowView], delta: &FlowDelta) {
        let mut arrived = delta.arrived.clone();
        arrived.sort_unstable();
        for id in arrived {
            if flows.binary_search_by(|v| v.id.cmp(&id)).is_err() {
                continue; // arrived and departed without ever being served
            }
            let key = self.group_of(id);
            self.arrivals.entry(key).or_insert(now);
            let list = self.cached_members.entry(key).or_default();
            let pos = list.partition_point(|&f| f < id);
            list.insert(pos, id);
        }
        for &id in &delta.departed {
            let key = self.group_of(id);
            if let Some(list) = self.cached_members.get_mut(&key) {
                if let Ok(pos) = list.binary_search(&id) {
                    list.remove(pos);
                }
                if list.is_empty() {
                    self.cached_members.remove(&key);
                }
            }
        }
        self.links.apply_delta(flows, delta);
    }

    /// True when the cache covers exactly the given active set. The link
    /// index is fed from the same delta stream as the member cache, so
    /// its O(F) flow-table walk vouches for both.
    fn cache_consistent(&self, flows: &[ActiveFlowView]) -> bool {
        self.links.consistent(flows)
    }

    fn rebuild_cache(&mut self, now: SimTime, flows: &[ActiveFlowView]) {
        self.cached_members.clear();
        for v in flows {
            let key = self.group_of(v.id);
            self.arrivals.entry(key).or_insert(now);
            self.cached_members.entry(key).or_default().push(v.id);
        }
        self.links.rebuild(flows);
    }

    /// Allocation from the cached group structure maintained by
    /// [`Self::apply_delta`]. Requires `flows` sorted by ascending id.
    /// Observationally identical to the naive [`RatePolicy::allocate`].
    pub fn allocate_cached(
        &mut self,
        now: SimTime,
        flows: &[ActiveFlowView],
        topo: &Topology,
    ) -> RateAlloc {
        let mut ws = AllocScratch::new();
        let mut out = Vec::new();
        self.allocate_cached_dense(now, flows, topo, &mut ws, &mut out);
        dense_to_alloc(flows, &out)
    }

    /// [`Self::allocate_cached`] writing the dense allocation (indexed
    /// like the id-sorted `flows`) into `out` instead of building a map.
    pub fn allocate_cached_dense(
        &mut self,
        now: SimTime,
        flows: &[ActiveFlowView],
        topo: &Topology,
        ws: &mut AllocScratch,
        out: &mut Vec<f64>,
    ) {
        debug_assert!(flows.windows(2).all(|w| w[0].id < w[1].id));
        if !self.cache_consistent(flows) {
            self.rebuild_cache(now, flows);
        }
        let mut sc = std::mem::take(&mut self.scratch);
        let mut load = std::mem::take(&mut self.load);
        self.build_csr(flows, &mut sc);
        self.order_groups(now, flows, topo, &mut sc, &mut load);
        self.serve_csr(flows, topo, ws, &mut sc, &mut load, out);
        self.scratch = sc;
        self.load = load;
    }

    /// Flattens the cached member lists into the CSR workspace, resolving
    /// each member's position in the id-sorted flow slice once. Groups
    /// land in ascending key order (the member cache's `BTreeMap`
    /// iteration order), members in ascending id order.
    fn build_csr(&self, flows: &[ActiveFlowView], sc: &mut GroupCsr<GroupKey>) {
        sc.clear_groups();
        for (k, ids) in &self.cached_members {
            sc.keys.push(*k);
            for id in ids {
                let idx = flows
                    .binary_search_by(|v| v.id.cmp(id))
                    .expect("cached flow is active");
                sc.pos.push(idx);
            }
            sc.starts.push(sc.pos.len());
        }
    }
}

impl RatePolicy for VarysMadd {
    fn allocate(&mut self, now: SimTime, flows: &[ActiveFlowView], topo: &Topology) -> RateAlloc {
        let mut ws = AllocScratch::new();
        let mut out = Vec::new();
        self.allocate_dense(now, flows, topo, &mut ws, &mut out);
        dense_to_alloc(flows, &out)
    }

    fn allocate_dense(
        &mut self,
        now: SimTime,
        flows: &[ActiveFlowView],
        topo: &Topology,
        ws: &mut AllocScratch,
        out: &mut Vec<f64>,
    ) {
        // Group active flows; record first-seen arrival per group.
        let mut groups: BTreeMap<GroupKey, Vec<&ActiveFlowView>> = BTreeMap::new();
        for v in flows {
            let key = self.group_of(v.id);
            self.arrivals.entry(key).or_insert(now);
            groups.entry(key).or_default().push(v);
        }

        let order = self.serve_order(now, &groups, topo);
        self.serve(&order, &groups, flows, topo, ws, out);
    }

    fn allocate_incremental(
        &mut self,
        now: SimTime,
        flows: &[ActiveFlowView],
        delta: &FlowDelta,
        topo: &Topology,
    ) -> RateAlloc {
        self.apply_delta(now, flows, delta);
        self.allocate_cached(now, flows, topo)
    }

    fn allocate_dense_incremental(
        &mut self,
        now: SimTime,
        flows: &[ActiveFlowView],
        delta: &FlowDelta,
        topo: &Topology,
        ws: &mut AllocScratch,
        out: &mut Vec<f64>,
    ) {
        self.apply_delta(now, flows, delta);
        self.allocate_cached_dense(now, flows, topo, ws, out);
    }

    fn name(&self) -> &'static str {
        match self.order {
            CoflowOrder::Sebf => "varys-madd(sebf)",
            CoflowOrder::Bssi => "varys-madd(bssi)",
            CoflowOrder::Arrival => "varys-madd(arrival)",
        }
    }

    fn book_stats(&self) -> Option<(usize, usize)> {
        Some((self.occupancy(), self.peak_occupancy()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echelon_core::echelon::FlowRef;
    use echelon_core::JobId;
    use echelon_simnet::flow::FlowDemand;
    use echelon_simnet::ids::NodeId;
    use echelon_simnet::runner::run_flows;

    fn fr(id: u64, src: u32, dst: u32, size: f64) -> FlowRef {
        FlowRef::new(FlowId(id), NodeId(src), NodeId(dst), size)
    }

    fn demand(id: u64, src: u32, dst: u32, size: f64, release: f64) -> FlowDemand {
        FlowDemand::new(
            FlowId(id),
            NodeId(src),
            NodeId(dst),
            size,
            SimTime::new(release),
        )
    }

    /// The coflow half of the paper's Fig. 2: three 2B flows released at
    /// t = 1, 2, 3 on a B = 1 link, formulated as one coflow. MADD with
    /// remaining bytes makes them all finish simultaneously at t = 7.
    #[test]
    fn fig2b_all_flows_finish_at_7() {
        let topo = Topology::chain(2, 1.0);
        let coflow = Coflow::new(
            EchelonId(0),
            JobId(0),
            vec![fr(0, 0, 1, 2.0), fr(1, 0, 1, 2.0), fr(2, 0, 1, 2.0)],
        );
        let mut policy = VarysMadd::new(vec![coflow]);
        let out = run_flows(
            &topo,
            vec![
                demand(0, 0, 1, 2.0, 1.0),
                demand(1, 0, 1, 2.0, 2.0),
                demand(2, 0, 1, 2.0, 3.0),
            ],
            &mut policy,
        );
        for id in [FlowId(0), FlowId(1), FlowId(2)] {
            assert!(
                out.finish(id).unwrap().approx_eq(SimTime::new(7.0)),
                "flow {id} finished at {:?}",
                out.finish(id)
            );
        }
    }

    /// The published rate sequence of Fig. 2b: after the third arrival the
    /// flows proceed at B/6, B/3, B/2.
    #[test]
    fn fig2b_final_rates_match_figure() {
        let topo = Topology::chain(2, 1.0);
        let coflow = Coflow::new(
            EchelonId(0),
            JobId(0),
            vec![fr(0, 0, 1, 2.0), fr(1, 0, 1, 2.0), fr(2, 0, 1, 2.0)],
        );
        let mut policy = VarysMadd::new(vec![coflow]);
        let out = run_flows(
            &topo,
            vec![
                demand(0, 0, 1, 2.0, 1.0),
                demand(1, 0, 1, 2.0, 2.0),
                demand(2, 0, 1, 2.0, 3.0),
            ],
            &mut policy,
        );
        // Last RateSet before completion for each flow.
        let last_rate = |id: FlowId| -> f64 {
            out.trace()
                .rate_series(id)
                .iter()
                .rev()
                .find(|(_, r)| *r > 0.0)
                .map(|(_, r)| *r)
                .unwrap()
        };
        assert!((last_rate(FlowId(0)) - 1.0 / 6.0).abs() < 1e-9);
        assert!((last_rate(FlowId(1)) - 1.0 / 3.0).abs() < 1e-9);
        assert!((last_rate(FlowId(2)) - 1.0 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn sebf_serves_small_coflow_first() {
        let topo = Topology::chain(2, 1.0);
        let small = Coflow::new(EchelonId(0), JobId(0), vec![fr(0, 0, 1, 1.0)]);
        let big = Coflow::new(EchelonId(1), JobId(1), vec![fr(1, 0, 1, 4.0)]);
        let mut policy = VarysMadd::new(vec![big, small]);
        let out = run_flows(
            &topo,
            vec![demand(0, 0, 1, 1.0, 0.0), demand(1, 0, 1, 4.0, 0.0)],
            &mut policy,
        );
        assert!(out.finish(FlowId(0)).unwrap().approx_eq(SimTime::new(1.0)));
        assert!(out.finish(FlowId(1)).unwrap().approx_eq(SimTime::new(5.0)));
    }

    #[test]
    fn arrival_order_serves_first_come_first() {
        let topo = Topology::chain(2, 1.0);
        let small = Coflow::new(EchelonId(0), JobId(0), vec![fr(0, 0, 1, 1.0)]);
        let big = Coflow::new(EchelonId(1), JobId(1), vec![fr(1, 0, 1, 4.0)]);
        let mut policy = VarysMadd::new(vec![big, small]).with_order(CoflowOrder::Arrival);
        let out = run_flows(
            &topo,
            vec![demand(1, 0, 1, 4.0, 0.0), demand(0, 0, 1, 1.0, 0.5)],
            &mut policy,
        );
        // Big arrived first and is not preempted by the small one.
        assert!(out.finish(FlowId(1)).unwrap().approx_eq(SimTime::new(4.0)));
        assert!(out.finish(FlowId(0)).unwrap().approx_eq(SimTime::new(5.0)));
    }

    #[test]
    fn bssi_order_also_finishes_small_first() {
        let topo = Topology::chain(2, 1.0);
        let small = Coflow::new(EchelonId(0), JobId(0), vec![fr(0, 0, 1, 1.0)]);
        let big = Coflow::new(EchelonId(1), JobId(1), vec![fr(1, 0, 1, 4.0)]);
        let mut policy = VarysMadd::new(vec![big, small]).with_order(CoflowOrder::Bssi);
        let out = run_flows(
            &topo,
            vec![demand(0, 0, 1, 1.0, 0.0), demand(1, 0, 1, 4.0, 0.0)],
            &mut policy,
        );
        assert!(out.finish(FlowId(0)).unwrap().approx_eq(SimTime::new(1.0)));
        assert!(out.finish(FlowId(1)).unwrap().approx_eq(SimTime::new(5.0)));
    }

    #[test]
    fn coflow_flows_on_disjoint_ports_finish_together() {
        // MADD shapes the whole coflow to its bottleneck: a coflow with a
        // 2B flow and a 1B flow on disjoint ports finishes both at Γ = 2
        // ... unless backfill accelerates the small one. With backfill off
        // they finish together.
        let topo = Topology::big_switch_uniform(4, 1.0);
        let coflow = Coflow::new(
            EchelonId(0),
            JobId(0),
            vec![fr(0, 0, 1, 2.0), fr(1, 2, 3, 1.0)],
        );
        let mut policy = VarysMadd::new(vec![coflow]).with_backfill(false);
        let out = run_flows(
            &topo,
            vec![demand(0, 0, 1, 2.0, 0.0), demand(1, 2, 3, 1.0, 0.0)],
            &mut policy,
        );
        assert!(out.finish(FlowId(0)).unwrap().approx_eq(SimTime::new(2.0)));
        assert!(out.finish(FlowId(1)).unwrap().approx_eq(SimTime::new(2.0)));
    }

    #[test]
    fn backfill_accelerates_non_bottleneck_flow() {
        let topo = Topology::big_switch_uniform(4, 1.0);
        let coflow = Coflow::new(
            EchelonId(0),
            JobId(0),
            vec![fr(0, 0, 1, 2.0), fr(1, 2, 3, 1.0)],
        );
        let mut policy = VarysMadd::new(vec![coflow]); // backfill on
        let out = run_flows(
            &topo,
            vec![demand(0, 0, 1, 2.0, 0.0), demand(1, 2, 3, 1.0, 0.0)],
            &mut policy,
        );
        assert!(out.finish(FlowId(1)).unwrap().approx_eq(SimTime::new(1.0)));
        assert!(out.finish(FlowId(0)).unwrap().approx_eq(SimTime::new(2.0)));
    }

    #[test]
    fn unaffiliated_flows_become_singletons() {
        let topo = Topology::chain(2, 1.0);
        let mut policy = VarysMadd::new(vec![]);
        let out = run_flows(
            &topo,
            vec![demand(0, 0, 1, 1.0, 0.0), demand(1, 0, 1, 2.0, 0.0)],
            &mut policy,
        );
        // SEBF over singletons = SRPT-ish: short one first.
        assert!(out.finish(FlowId(0)).unwrap().approx_eq(SimTime::new(1.0)));
        assert!(out.finish(FlowId(1)).unwrap().approx_eq(SimTime::new(3.0)));
    }

    /// The incremental path must be bit-identical to the naive one for
    /// every coflow ordering.
    #[test]
    fn incremental_path_matches_naive() {
        use echelon_simnet::runner::{run_flows_with, RecomputeMode};
        let topo = Topology::big_switch_uniform(4, 1.0);
        let make = |order| {
            let c0 = Coflow::new(
                EchelonId(0),
                JobId(0),
                vec![fr(0, 0, 1, 2.0), fr(1, 0, 1, 2.0), fr(2, 2, 1, 1.0)],
            );
            let c1 = Coflow::new(EchelonId(1), JobId(1), vec![fr(10, 1, 3, 4.0)]);
            VarysMadd::new(vec![c0, c1]).with_order(order)
        };
        let demands = vec![
            demand(0, 0, 1, 2.0, 1.0),
            demand(1, 0, 1, 2.0, 2.0),
            demand(2, 2, 1, 1.0, 0.0),
            demand(10, 1, 3, 4.0, 0.5),
            demand(20, 3, 0, 0.7, 0.2), // solo flow
        ];
        for order in [CoflowOrder::Sebf, CoflowOrder::Bssi, CoflowOrder::Arrival] {
            let a = run_flows(&topo, demands.clone(), &mut make(order));
            let b = run_flows_with(
                &topo,
                demands.clone(),
                &mut make(order),
                RecomputeMode::Incremental,
            );
            assert_eq!(
                a.trace().events(),
                b.trace().events(),
                "trace mismatch for {order:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "claimed by two")]
    fn overlapping_coflows_rejected() {
        let a = Coflow::new(EchelonId(0), JobId(0), vec![fr(0, 0, 1, 1.0)]);
        let b = Coflow::new(EchelonId(1), JobId(0), vec![fr(0, 0, 1, 1.0)]);
        let _ = VarysMadd::new(vec![a, b]);
    }
}
