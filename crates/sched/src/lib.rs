//! # echelon-sched — flow schedulers for the EchelonFlow reproduction
//!
//! Every scheduler implements [`echelon_simnet::runner::RatePolicy`]: given
//! the active flows and the topology, produce a feasible rate allocation.
//! The lineup covers the paper's baselines and its contribution:
//!
//! - [`baselines`] — per-flow policies: max-min fair sharing (Fig. 2a),
//!   FIFO, and SRPT (pFabric-style shortest-remaining-first).
//! - [`varys`] — Coflow scheduling (Fig. 2b): intra-coflow MADD (all flows
//!   of a coflow finish together at its bottleneck time) with inter-coflow
//!   SEBF or Sincronia-style ordering and work-conserving backfill.
//! - [`echelon`] — **the paper's scheduler**: MADD adapted to the
//!   tardiness metric exactly as Property 4 prescribes. Intra-EchelonFlow,
//!   stages are served in ideal-finish-time order (earliest-due-date —
//!   provably optimal for max lateness on a single resource) with MADD
//!   rate shaping inside each stage; inter-EchelonFlow, EchelonFlows are
//!   ranked by their tardiness (Eq. 2).
//! - [`sincronia`] — the BSSI-style coflow ordering used as an inter-group
//!   ordering ablation.
//! - [`optimal`] — brute-force search over permutation schedules on small
//!   instances, the ground truth for the Property 1 experiments.
//! - [`book`] — shared bookkeeping: binds EchelonFlow reference times as
//!   head flows appear and resolves per-flow ideal finish times.

//!
//! ## Example
//!
//! ```
//! use echelon_core::prelude::*;
//! use echelon_sched::prelude::*;
//! use echelon_simnet::prelude::*;
//!
//! // The paper's Fig. 2 instance as raw flows + an EchelonFlow.
//! let topo = Topology::chain(2, 1.0);
//! let flows: Vec<FlowRef> = (0..3)
//!     .map(|m| FlowRef::new(FlowId(m), NodeId(0), NodeId(1), 2.0))
//!     .collect();
//! let h = EchelonFlow::from_flows(
//!     EchelonId(0), JobId(0), flows, ArrangementFn::Staggered { gap: 1.0 });
//! let demands: Vec<FlowDemand> = (0..3)
//!     .map(|m| FlowDemand::new(
//!         FlowId(m), NodeId(0), NodeId(1), 2.0, SimTime::new(1.0 + m as f64)))
//!     .collect();
//!
//! let mut policy = EchelonMadd::new(vec![h]);
//! let out = run_flows(&topo, demands, &mut policy);
//! // Staggered finishes at 3, 5, 7 — the paper's optimal schedule.
//! assert!(out.finish(FlowId(2)).unwrap().approx_eq(SimTime::new(7.0)));
//! ```

pub mod baselines;
pub mod book;
pub mod echelon;
pub mod optimal;
mod scratch;
pub mod sincronia;
pub mod varys;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::baselines::{FairPolicy, FifoPolicy, SrptPolicy};
    pub use crate::book::EchelonBook;
    pub use crate::echelon::{EchelonMadd, InterOrder, IntraMode};
    pub use crate::optimal::{optimal_schedule, Objective, OptimalResult};
    pub use crate::varys::{CoflowOrder, VarysMadd};
}
