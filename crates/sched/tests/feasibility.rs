//! Property tests: every scheduler's allocation is feasible on random
//! inputs, on both topology families, with arbitrary group structures.
//!
//! Inputs are generated from seeded `echelon-detrand` streams so every
//! failure is reproducible from the printed seed.

use echelon_core::arrangement::ArrangementFn;
use echelon_core::coflow::Coflow;
use echelon_core::echelon::{EchelonFlow, FlowRef};
use echelon_core::{EchelonId, JobId};
use echelon_detrand::DetRng;
use echelon_sched::baselines::{FifoPolicy, SrptPolicy};
use echelon_sched::echelon::{EchelonMadd, InterOrder, IntraMode};
use echelon_sched::varys::{CoflowOrder, VarysMadd};
use echelon_simnet::alloc::check_feasible;
use echelon_simnet::flow::ActiveFlowView;
use echelon_simnet::ids::{FlowId, NodeId};
use echelon_simnet::runner::{MaxMinPolicy, RatePolicy};
use echelon_simnet::time::SimTime;
use echelon_simnet::topology::Topology;

const HOSTS: u32 = 5;
const CASES: u64 = 48;

#[derive(Debug, Clone)]
struct RawFlow {
    src: u32,
    dst_raw: u32,
    size: f64,
    progress: f64,
    release: f64,
}

fn raw_flows(rng: &mut DetRng) -> Vec<RawFlow> {
    let n = rng.usize_range_inclusive(1, 12);
    (0..n)
        .map(|_| RawFlow {
            src: rng.usize_range_inclusive(0, HOSTS as usize - 1) as u32,
            dst_raw: rng.usize_range_inclusive(0, HOSTS as usize - 2) as u32,
            size: rng.f64_range(0.1, 5.0),
            progress: rng.f64_range(0.01, 1.0),
            release: rng.f64_range(0.0, 4.0),
        })
        .collect()
}

fn views(raw: &[RawFlow], topo: &Topology) -> Vec<ActiveFlowView> {
    raw.iter()
        .enumerate()
        .map(|(i, r)| {
            let dst = if r.dst_raw >= r.src {
                r.dst_raw + 1
            } else {
                r.dst_raw
            };
            ActiveFlowView {
                id: FlowId(i as u64),
                src: NodeId(r.src),
                dst: NodeId(dst),
                size: r.size,
                remaining: (r.size * r.progress).max(1e-6),
                release: SimTime::new(r.release),
                route: topo.route(NodeId(r.src), NodeId(dst)),
                slot: i as u32,
            }
        })
        .collect()
}

/// Groups the flows alternately into two EchelonFlows (one staggered, one
/// coflow-shaped); leftover flows stay solo.
fn group(views: &[ActiveFlowView]) -> (Vec<EchelonFlow>, Vec<Coflow>) {
    let refs = |idx: &mut dyn Iterator<Item = usize>| -> Vec<FlowRef> {
        idx.map(|i| {
            let v = &views[i];
            FlowRef::new(v.id, v.src, v.dst, v.size)
        })
        .collect()
    };
    let mut echelons = Vec::new();
    let mut coflows = Vec::new();
    let staggered = refs(&mut (0..views.len()).step_by(3));
    if !staggered.is_empty() {
        echelons.push(EchelonFlow::from_flows(
            EchelonId(0),
            JobId(0),
            staggered.clone(),
            ArrangementFn::Staggered { gap: 0.4 },
        ));
        coflows.push(Coflow::new(EchelonId(0), JobId(0), staggered));
    }
    let grouped = refs(&mut (0..views.len()).skip(1).step_by(3));
    if !grouped.is_empty() {
        echelons.push(EchelonFlow::new(
            EchelonId(1),
            JobId(1),
            vec![grouped.clone()],
            ArrangementFn::Coflow,
        ));
        coflows.push(Coflow::new(EchelonId(1), JobId(1), grouped));
    }
    (echelons, coflows)
}

fn check_policy(policy: &mut dyn RatePolicy, flows: &[ActiveFlowView], topo: &Topology) {
    let alloc = policy.allocate(SimTime::new(5.0), flows, topo);
    check_feasible(topo, flows, &alloc)
        .unwrap_or_else(|e| panic!("{} infeasible: {e}", policy.name()));
    // No flow is starved forever when capacity is free: at least one
    // active flow must have positive rate.
    if !flows.is_empty() {
        let total: f64 = alloc.values().sum();
        assert!(total > 0.0, "{} starved everything", policy.name());
    }
}

#[test]
fn all_schedulers_feasible_on_big_switch() {
    for seed in 0..CASES {
        let mut rng = DetRng::seed_from_u64(seed);
        let raw = raw_flows(&mut rng);
        let topo = Topology::big_switch_uniform(HOSTS as usize, 1.0);
        let flows = views(&raw, &topo);
        let (echelons, coflows) = group(&flows);

        check_policy(&mut MaxMinPolicy, &flows, &topo);
        check_policy(&mut FifoPolicy, &flows, &topo);
        check_policy(&mut SrptPolicy, &flows, &topo);
        for order in [CoflowOrder::Sebf, CoflowOrder::Bssi, CoflowOrder::Arrival] {
            let mut p = VarysMadd::new(coflows.clone()).with_order(order);
            check_policy(&mut p, &flows, &topo);
        }
        for inter in [
            InterOrder::EarliestDeadline,
            InterOrder::LeastWork,
            InterOrder::MostTardy,
            InterOrder::Bssi,
        ] {
            for intra in [IntraMode::FinishEarly, IntraMode::Equalize] {
                let mut p = EchelonMadd::new(echelons.clone())
                    .with_inter(inter)
                    .with_intra(intra);
                check_policy(&mut p, &flows, &topo);
            }
        }
    }
}

#[test]
fn all_schedulers_feasible_on_chain() {
    for seed in 0..CASES {
        let mut rng = DetRng::seed_from_u64(seed);
        let raw = raw_flows(&mut rng);
        let topo = Topology::chain(HOSTS as usize, 0.7);
        let flows = views(&raw, &topo);
        let (echelons, coflows) = group(&flows);
        let mut varys = VarysMadd::new(coflows);
        check_policy(&mut varys, &flows, &topo);
        let mut echelon = EchelonMadd::new(echelons);
        check_policy(&mut echelon, &flows, &topo);
    }
}

#[test]
fn backfill_never_reduces_rates() {
    for seed in 0..CASES {
        let mut rng = DetRng::seed_from_u64(seed);
        let raw = raw_flows(&mut rng);
        let topo = Topology::big_switch_uniform(HOSTS as usize, 1.0);
        let flows = views(&raw, &topo);
        let (echelons, _) = group(&flows);
        let mut with = EchelonMadd::new(echelons.clone());
        let mut without = EchelonMadd::new(echelons).with_backfill(false);
        let a = with.allocate(SimTime::new(5.0), &flows, &topo);
        let b = without.allocate(SimTime::new(5.0), &flows, &topo);
        for v in &flows {
            let ra = a.get(&v.id).copied().unwrap_or(0.0);
            let rb = b.get(&v.id).copied().unwrap_or(0.0);
            assert!(
                ra + 1e-9 >= rb,
                "seed {seed}: backfill reduced {} from {rb} to {ra}",
                v.id
            );
        }
    }
}
