//! # echelon-core — the EchelonFlow network abstraction
//!
//! This crate implements the primary contribution of the paper
//! *"Efficient Flow Scheduling in Distributed Deep Learning Training with
//! Echelon Formation"* (HotNets '22, §3): the **EchelonFlow** — a set of
//! flows whose *ideal finish times* are related by an **arrangement
//! function** of a single *reference time*, together with the **tardiness**
//! metrics the scheduling objective is built from.
//!
//! The central deviation from Coflow is that the flows of an EchelonFlow
//! should *not* all finish at the same time: distributed training jobs
//! observe strict computation patterns that consume flow data at staggered
//! instants (a pipeline consumes micro-batch `j+1` one computation-unit
//! after micro-batch `j`). The arrangement function encodes that pattern —
//! its *shape* comes from the training paradigm's workflow and its
//! *distance* from profiled computation times.
//!
//! ## Structure of an EchelonFlow
//!
//! Following the paper's case studies (§4) an [`echelon::EchelonFlow`] is a
//! sequence of **stages**, each a set of flows sharing one ideal finish
//! time:
//!
//! - A plain **Coflow** is one stage containing all flows (Eq. 5).
//! - **Pipeline parallelism** is one flow per stage with a constant gap
//!   `T` between ideal finish times (Eq. 6).
//! - **FSDP** is one all-gather Coflow per stage with gaps `T_fwd` /
//!   `T_bwd` (Eq. 7) — "staggered Coflow finish time" in Table 1.
//!
//! ## Modules
//!
//! - [`arrangement`] — the arrangement functions `g(D, r)` (Eqs. 5-7 and a
//!   general offset form for DAG-derived shapes).
//! - [`echelon`] — the [`echelon::EchelonFlow`] type, reference-time
//!   binding and recalibration.
//! - [`tardiness`] — flow tardiness (Eq. 1), EchelonFlow tardiness
//!   (Eq. 2) and the global objective (Eqs. 3-4).
//! - [`coflow`] — the classic Coflow abstraction and the lossless
//!   embedding Coflow ⊂ EchelonFlow (Property 2).
//! - [`compose`] — inter-Coflow dependency composition (§6): chaining
//!   and concatenating EchelonFlows for multi-stage applications.

//!
//! ## Example
//!
//! ```
//! use echelon_core::prelude::*;
//! use echelon_simnet::ids::{FlowId, NodeId};
//! use echelon_simnet::time::SimTime;
//! use std::collections::BTreeMap;
//!
//! // A pipeline-shaped EchelonFlow: three activation flows whose ideal
//! // finish times are staggered by the profiled computation time T = 1.
//! let flows = vec![
//!     FlowRef::new(FlowId(0), NodeId(0), NodeId(1), 2.0),
//!     FlowRef::new(FlowId(1), NodeId(0), NodeId(1), 2.0),
//!     FlowRef::new(FlowId(2), NodeId(0), NodeId(1), 2.0),
//! ];
//! let mut h = EchelonFlow::from_flows(
//!     EchelonId(0),
//!     JobId(0),
//!     flows,
//!     ArrangementFn::Staggered { gap: 1.0 },
//! );
//! // The reference time binds to the head flow's start (Definition 3.1).
//! h.bind_reference(SimTime::new(1.0));
//! assert_eq!(h.ideal_finish_of_stage(2), SimTime::new(3.0));
//!
//! // Tardiness (Eq. 2) of the Fig. 2c schedule (finishes 3, 5, 7).
//! let finishes: BTreeMap<FlowId, SimTime> = [(0u64, 3.0), (1, 5.0), (2, 7.0)]
//!     .into_iter()
//!     .map(|(i, t)| (FlowId(i), SimTime::new(t)))
//!     .collect();
//! assert_eq!(echelon_tardiness(&h, &finishes), 4.0);
//! ```

pub mod arrangement;
pub mod coflow;
pub mod compose;
pub mod echelon;
pub mod tardiness;

use core::fmt;

/// Identifies an EchelonFlow within a simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EchelonId(pub u64);

/// Identifies a training job in a multi-tenant cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct JobId(pub u32);

impl fmt::Display for EchelonId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H{}", self.0)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Convenient re-exports.
pub mod prelude {
    pub use crate::arrangement::ArrangementFn;
    pub use crate::coflow::Coflow;
    pub use crate::compose::{chain_coflows, concat, phased_chain, uniform_chain};
    pub use crate::echelon::{EchelonFlow, FlowRef};
    pub use crate::tardiness::{
        echelon_tardiness, flow_tardiness, total_tardiness, TardinessReport,
    };
    pub use crate::{EchelonId, JobId};
}
