//! The classic Coflow abstraction and its embedding into EchelonFlow
//! (paper §2.2 and Property 2).
//!
//! A Coflow (Chowdhury & Stoica, HotNets '12) is a set of semantically
//! related flows whose shared goal is minimizing the completion time of the
//! last flow (CCT). The paper proves EchelonFlow is a strict superset:
//! a Coflow is exactly an EchelonFlow whose arrangement function is Eq. 5
//! (`d_j = r` for all `j`), in which case minimizing the maximum tardiness
//! is minimizing CCT measured from the first flow's start.

use crate::arrangement::ArrangementFn;
use crate::echelon::{EchelonFlow, FlowRef};
use crate::{EchelonId, JobId};
use echelon_simnet::ids::FlowId;
use echelon_simnet::time::SimTime;
use std::collections::BTreeMap;

/// A Coflow: a flat set of flows with a common completion goal.
#[derive(Debug, Clone)]
pub struct Coflow {
    id: EchelonId,
    job: JobId,
    flows: Vec<FlowRef>,
    weight: f64,
}

impl Coflow {
    /// Creates a Coflow.
    ///
    /// # Panics
    ///
    /// Panics if `flows` is empty or contains duplicate ids.
    pub fn new(id: EchelonId, job: JobId, flows: Vec<FlowRef>) -> Coflow {
        assert!(!flows.is_empty(), "Coflow needs at least one flow");
        let mut seen = std::collections::BTreeSet::new();
        for f in &flows {
            assert!(seen.insert(f.id), "flow {} appears twice", f.id);
        }
        Coflow {
            id,
            job,
            flows,
            weight: 1.0,
        }
    }

    /// Sets the Coflow's weight.
    pub fn with_weight(mut self, weight: f64) -> Coflow {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "weight must be positive"
        );
        self.weight = weight;
        self
    }

    /// The Coflow's id (shared id space with EchelonFlows).
    pub fn id(&self) -> EchelonId {
        self.id
    }

    /// Owning job.
    pub fn job(&self) -> JobId {
        self.job
    }

    /// The member flows.
    pub fn flows(&self) -> &[FlowRef] {
        &self.flows
    }

    /// Weight in aggregate objectives.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Total bytes across the member flows.
    pub fn total_bytes(&self) -> f64 {
        self.flows.iter().map(|f| f.size).sum()
    }

    /// Coflow completion time: latest member finish minus `start`.
    ///
    /// # Panics
    ///
    /// Panics if a member flow's finish is missing.
    pub fn cct(&self, start: SimTime, finishes: &BTreeMap<FlowId, SimTime>) -> f64 {
        self.flows
            .iter()
            .map(|f| {
                let e = finishes
                    .get(&f.id)
                    .unwrap_or_else(|| panic!("flow {} has no recorded finish", f.id));
                *e - start
            })
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Embeds this Coflow as a degenerate EchelonFlow (Property 2): one
    /// stage containing every flow, arrangement Eq. 5.
    pub fn into_echelon(self) -> EchelonFlow {
        EchelonFlow::new(self.id, self.job, vec![self.flows], ArrangementFn::Coflow)
            .with_weight(self.weight)
    }
}

/// Recovers a Coflow from a Coflow-compliant EchelonFlow (all stages
/// sharing one ideal finish time). Returns `None` for genuinely staggered
/// EchelonFlows — Coflow cannot express them (the "×" rows of Table 1).
pub fn try_into_coflow(h: &EchelonFlow) -> Option<Coflow> {
    if !h.is_coflow_compliant() {
        return None;
    }
    Some(Coflow::new(h.id(), h.job(), h.flows().copied().collect()).with_weight(h.weight()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tardiness::echelon_tardiness;
    use echelon_simnet::ids::NodeId;

    fn fr(id: u64, size: f64) -> FlowRef {
        FlowRef::new(FlowId(id), NodeId(0), NodeId(1), size)
    }

    fn finishes(pairs: &[(u64, f64)]) -> BTreeMap<FlowId, SimTime> {
        pairs
            .iter()
            .map(|&(id, t)| (FlowId(id), SimTime::new(t)))
            .collect()
    }

    #[test]
    fn cct_is_latest_finish() {
        let c = Coflow::new(EchelonId(0), JobId(0), vec![fr(0, 1.0), fr(1, 2.0)]);
        let fin = finishes(&[(0, 4.0), (1, 6.0)]);
        assert!((c.cct(SimTime::new(1.0), &fin) - 5.0).abs() < 1e-9);
        assert_eq!(c.total_bytes(), 3.0);
    }

    #[test]
    fn property2_embedding_preserves_metric() {
        // Property 2: the embedded EchelonFlow's tardiness equals the
        // Coflow's CCT measured from the first flow's start.
        let c = Coflow::new(EchelonId(0), JobId(0), vec![fr(0, 1.0), fr(1, 2.0)]);
        let fin = finishes(&[(0, 4.0), (1, 6.0)]);
        let start = SimTime::new(1.0);
        let cct = c.cct(start, &fin);
        let mut h = c.into_echelon();
        assert!(h.is_coflow_compliant());
        h.bind_reference(start);
        let t = echelon_tardiness(&h, &fin);
        assert!((t - cct).abs() < 1e-9);
    }

    #[test]
    fn round_trip_through_echelon() {
        let c = Coflow::new(EchelonId(3), JobId(1), vec![fr(0, 1.0), fr(1, 2.0)]).with_weight(2.0);
        let h = c.into_echelon();
        let back = try_into_coflow(&h).expect("compliant EchelonFlow");
        assert_eq!(back.id(), EchelonId(3));
        assert_eq!(back.job(), JobId(1));
        assert_eq!(back.flows().len(), 2);
        assert_eq!(back.weight(), 2.0);
    }

    #[test]
    fn staggered_echelon_is_not_a_coflow() {
        let h = EchelonFlow::from_flows(
            EchelonId(0),
            JobId(0),
            vec![fr(0, 1.0), fr(1, 1.0)],
            ArrangementFn::Staggered { gap: 1.0 },
        );
        assert!(try_into_coflow(&h).is_none());
    }

    #[test]
    fn zero_gap_staggered_recovers_coflow() {
        // A staggered arrangement with zero distance is semantically a
        // Coflow; the conversion accepts it.
        let h = EchelonFlow::from_flows(
            EchelonId(0),
            JobId(0),
            vec![fr(0, 1.0), fr(1, 1.0)],
            ArrangementFn::Staggered { gap: 0.0 },
        );
        assert!(try_into_coflow(&h).is_some());
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_flows_rejected() {
        let _ = Coflow::new(EchelonId(0), JobId(0), vec![fr(0, 1.0), fr(0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn empty_coflow_rejected() {
        let _ = Coflow::new(EchelonId(0), JobId(0), vec![]);
    }
}
