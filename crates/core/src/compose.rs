//! Composing EchelonFlows (paper §6).
//!
//! "EchelonFlow incorporates inter-Coflow dependencies in the design,
//! e.g., concatenating Coflows in FSDP, similar to inter-Coflow
//! scheduling in multi-stage applications with DAGs." This module makes
//! that composition a first-class operation:
//!
//! - [`chain_coflows`] builds an EchelonFlow from a sequence of Coflows
//!   with explicit inter-Coflow gaps (the generalization of Eq. 7 to
//!   non-uniform phase times);
//! - [`concat`](fn@concat) joins two EchelonFlows end to end, shifting the second's
//!   arrangement behind the first's last ideal finish — the way a
//!   multi-stage application's stages compose.

use crate::arrangement::ArrangementFn;
use crate::coflow::Coflow;
use crate::echelon::{EchelonFlow, FlowRef};
use crate::{EchelonId, JobId};

/// Builds one EchelonFlow from Coflows separated by profiled gaps:
/// `stages[i].1` is the computation time between Coflow `i-1`'s and
/// Coflow `i`'s ideal finishes (`stages[0].1` is ignored and must be 0).
///
/// # Panics
///
/// Panics on an empty chain, a nonzero head gap, or a negative gap.
pub fn chain_coflows(id: EchelonId, job: JobId, stages: Vec<(Vec<FlowRef>, f64)>) -> EchelonFlow {
    assert!(!stages.is_empty(), "chain needs at least one Coflow");
    assert!(
        stages[0].1.abs() < 1e-12,
        "head Coflow's gap must be 0, got {}",
        stages[0].1
    );
    let mut offsets = Vec::with_capacity(stages.len());
    let mut acc = 0.0;
    let mut flow_stages = Vec::with_capacity(stages.len());
    for (i, (flows, gap)) in stages.into_iter().enumerate() {
        assert!(gap >= 0.0 && gap.is_finite(), "bad gap {gap} at stage {i}");
        acc += gap;
        offsets.push(acc);
        flow_stages.push(flows);
    }
    EchelonFlow::new(id, job, flow_stages, ArrangementFn::from_offsets(offsets))
}

/// Concatenates two EchelonFlows: `b`'s stages follow `a`'s, with `b`'s
/// head ideal finish placed `gap` after `a`'s last ideal finish. The
/// result carries `a`'s weight.
///
/// # Panics
///
/// Panics if the inputs share flows (checked by the EchelonFlow
/// constructor) or `gap` is negative.
pub fn concat(id: EchelonId, a: &EchelonFlow, b: &EchelonFlow, gap: f64) -> EchelonFlow {
    assert!(gap >= 0.0 && gap.is_finite(), "bad gap {gap}");
    let na = a.num_stages();
    let nb = b.num_stages();
    let offsets_a = a.arrangement().offsets(na);
    let offsets_b = b.arrangement().offsets(nb);
    let base = offsets_a.last().copied().unwrap_or(0.0) + gap;

    let mut stages = Vec::with_capacity(na + nb);
    let mut offsets = Vec::with_capacity(na + nb);
    for (j, off) in offsets_a.iter().enumerate() {
        stages.push(a.stage(j).to_vec());
        offsets.push(*off);
    }
    for (j, off) in offsets_b.iter().enumerate() {
        stages.push(b.stage(j).to_vec());
        offsets.push(base + off);
    }
    EchelonFlow::new(id, a.job(), stages, ArrangementFn::from_offsets(offsets))
        .with_weight(a.weight())
}

/// Convenience: the FSDP shape (Eq. 7) as a chain — `n` forward Coflows
/// spaced by `t_fwd` followed by `n` backward Coflows spaced by `t_bwd`.
/// Equivalent to [`ArrangementFn::Phased`]; provided to cross-check the
/// closed form against explicit composition.
pub fn phased_chain(
    id: EchelonId,
    job: JobId,
    forward: Vec<Vec<FlowRef>>,
    backward: Vec<Vec<FlowRef>>,
    t_fwd: f64,
    t_bwd: f64,
) -> EchelonFlow {
    assert!(!forward.is_empty(), "need at least one forward Coflow");
    let mut stages = Vec::with_capacity(forward.len() + backward.len());
    for (i, flows) in forward.into_iter().enumerate() {
        stages.push((flows, if i == 0 { 0.0 } else { t_fwd }));
    }
    for flows in backward {
        stages.push((flows, t_bwd));
    }
    chain_coflows(id, job, stages)
}

/// Splits a Coflow list into a chain with uniform gaps — the simplest
/// §6 multi-stage-application shape.
pub fn uniform_chain(id: EchelonId, job: JobId, coflows: Vec<Coflow>, gap: f64) -> EchelonFlow {
    assert!(!coflows.is_empty(), "chain needs at least one Coflow");
    let stages = coflows
        .into_iter()
        .enumerate()
        .map(|(i, c)| {
            let flows = c.flows().to_vec();
            (flows, if i == 0 { 0.0 } else { gap })
        })
        .collect();
    chain_coflows(id, job, stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use echelon_simnet::ids::{FlowId, NodeId};
    use echelon_simnet::time::SimTime;

    fn fr(id: u64) -> FlowRef {
        FlowRef::new(FlowId(id), NodeId(0), NodeId(1), 1.0)
    }

    #[test]
    fn chain_accumulates_gaps() {
        let h = chain_coflows(
            EchelonId(0),
            JobId(0),
            vec![(vec![fr(0)], 0.0), (vec![fr(1)], 1.5), (vec![fr(2)], 0.5)],
        );
        assert_eq!(h.arrangement().offsets(3), vec![0.0, 1.5, 2.0]);
    }

    #[test]
    fn phased_chain_matches_closed_form() {
        let explicit = phased_chain(
            EchelonId(0),
            JobId(0),
            vec![vec![fr(0)], vec![fr(1)], vec![fr(2)]],
            vec![vec![fr(3)], vec![fr(4)], vec![fr(5)]],
            1.0,
            2.0,
        );
        let closed = ArrangementFn::Phased {
            fwd_gap: 1.0,
            bwd_gap: 2.0,
            fwd_count: 3,
        };
        assert_eq!(explicit.arrangement().offsets(6), closed.offsets(6));
    }

    #[test]
    fn concat_shifts_second_arrangement() {
        let a = EchelonFlow::from_flows(
            EchelonId(0),
            JobId(0),
            vec![fr(0), fr(1)],
            ArrangementFn::Staggered { gap: 1.0 },
        );
        let b = EchelonFlow::from_flows(
            EchelonId(1),
            JobId(0),
            vec![fr(2), fr(3)],
            ArrangementFn::Staggered { gap: 2.0 },
        );
        let mut c = concat(EchelonId(2), &a, &b, 0.5);
        assert_eq!(c.num_stages(), 4);
        // a: 0, 1; b shifted: 1.5, 3.5.
        assert_eq!(c.arrangement().offsets(4), vec![0.0, 1.0, 1.5, 3.5]);
        c.bind_reference(SimTime::new(2.0));
        assert!(c
            .ideal_finish_of_flow(FlowId(3))
            .unwrap()
            .approx_eq(SimTime::new(5.5)));
    }

    #[test]
    fn uniform_chain_over_coflows() {
        let coflows = vec![
            Coflow::new(EchelonId(10), JobId(0), vec![fr(0), fr(1)]),
            Coflow::new(EchelonId(11), JobId(0), vec![fr(2)]),
        ];
        let h = uniform_chain(EchelonId(0), JobId(0), coflows, 2.0);
        assert_eq!(h.num_stages(), 2);
        assert_eq!(h.arrangement().offsets(2), vec![0.0, 2.0]);
        assert_eq!(h.num_flows(), 3);
    }

    #[test]
    #[should_panic(expected = "head Coflow's gap")]
    fn nonzero_head_gap_rejected() {
        let _ = chain_coflows(EchelonId(0), JobId(0), vec![(vec![fr(0)], 1.0)]);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn concat_rejects_shared_flows() {
        let a = EchelonFlow::from_flows(EchelonId(0), JobId(0), vec![fr(0)], ArrangementFn::Coflow);
        let b = EchelonFlow::from_flows(EchelonId(1), JobId(0), vec![fr(0)], ArrangementFn::Coflow);
        let _ = concat(EchelonId(2), &a, &b, 0.0);
    }
}
