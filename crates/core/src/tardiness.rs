//! Tardiness metrics (paper Definitions 3.2-3.3 and Eqs. 1-4).
//!
//! Tardiness regulates flows with respect to their *ideal* finish times
//! rather than their start times, which is what lets later EchelonFlows
//! recover the computation arrangement after delays: a flow that started
//! late has an ideal finish time earlier than its start, so minimizing its
//! tardiness pushes the scheduler to let it catch up.
//!
//! Per the paper, flow tardiness is signed (`e − d`; a flow that finishes
//! before its ideal time has negative tardiness) and EchelonFlow tardiness
//! is the *maximum* over its flows, which "helps to reduce the difference
//! in tardiness among individual flows".

use crate::echelon::EchelonFlow;
use echelon_simnet::ids::FlowId;
use echelon_simnet::time::SimTime;
use std::collections::BTreeMap;

/// Eq. 1 — tardiness of one flow: actual finish `e` minus ideal finish
/// `d`. Negative when the flow beats its ideal time.
pub fn flow_tardiness(actual: SimTime, ideal: SimTime) -> f64 {
    actual - ideal
}

/// Eq. 2 — tardiness of an EchelonFlow: the maximum flow tardiness over
/// all its flows. An EchelonFlow with no flows has tardiness `0.0` (an
/// empty max would otherwise be `-inf`, which poisons Eq. 4 sums).
///
/// Every flow of `h` must appear in `finishes`; use
/// [`echelon_tardiness_partial`] while flows are still in flight.
///
/// # Panics
///
/// Panics if the reference time is unbound or a flow's finish is missing.
pub fn echelon_tardiness(h: &EchelonFlow, finishes: &BTreeMap<FlowId, SimTime>) -> f64 {
    let mut max_t: Option<f64> = None;
    for j in 0..h.num_stages() {
        let d = h.ideal_finish_of_stage(j);
        for f in h.stage(j) {
            let e = finishes
                .get(&f.id)
                .unwrap_or_else(|| panic!("flow {} has no recorded finish", f.id));
            let t = flow_tardiness(*e, d);
            max_t = Some(max_t.map_or(t, |m| m.max(t)));
        }
    }
    max_t.unwrap_or(0.0)
}

/// Eq. 2 restricted to flows that have finished. Returns `None` when no
/// flow of `h` has finished yet (the running tardiness is then unknown).
pub fn echelon_tardiness_partial(
    h: &EchelonFlow,
    finishes: &BTreeMap<FlowId, SimTime>,
) -> Option<f64> {
    let mut max_t: Option<f64> = None;
    for j in 0..h.num_stages() {
        let d = h.ideal_finish_of_stage(j);
        for f in h.stage(j) {
            if let Some(e) = finishes.get(&f.id) {
                let t = flow_tardiness(*e, d);
                max_t = Some(max_t.map_or(t, |m: f64| m.max(t)));
            }
        }
    }
    max_t
}

/// Eq. 4 — the global objective over a set of EchelonFlows: the weighted
/// sum of per-EchelonFlow tardiness. With unit weights this is the plain
/// sum of Eq. 4; the paper notes the weighted extension directly.
///
/// Individual tardiness values are clamped at zero before summing: an
/// EchelonFlow that beat its ideal times cannot "pay" for another's
/// lateness (this matches the scheduling interpretation — you cannot bank
/// negative lateness — and keeps the objective monotone).
pub fn total_tardiness(flows: &[&EchelonFlow], finishes: &BTreeMap<FlowId, SimTime>) -> f64 {
    flows
        .iter()
        .map(|h| h.weight() * echelon_tardiness(h, finishes).max(0.0))
        .sum()
}

/// A per-EchelonFlow breakdown of tardiness, for experiment reports.
#[derive(Debug, Clone, PartialEq)]
pub struct TardinessReport {
    /// `(stage index, flow id, ideal finish, actual finish, tardiness)`
    /// per flow, in stage order.
    pub per_flow: Vec<(usize, FlowId, SimTime, SimTime, f64)>,
    /// Eq. 2 for the whole EchelonFlow.
    pub max_tardiness: f64,
}

impl TardinessReport {
    /// Builds the breakdown for one EchelonFlow.
    ///
    /// # Panics
    ///
    /// Panics on unbound reference or missing finishes (same contract as
    /// [`echelon_tardiness`]).
    pub fn build(h: &EchelonFlow, finishes: &BTreeMap<FlowId, SimTime>) -> TardinessReport {
        let mut per_flow = Vec::new();
        let mut max_t: Option<f64> = None;
        for j in 0..h.num_stages() {
            let d = h.ideal_finish_of_stage(j);
            for f in h.stage(j) {
                let e = *finishes
                    .get(&f.id)
                    .unwrap_or_else(|| panic!("flow {} has no recorded finish", f.id));
                let t = flow_tardiness(e, d);
                max_t = Some(max_t.map_or(t, |m| m.max(t)));
                per_flow.push((j, f.id, d, e, t));
            }
        }
        TardinessReport {
            per_flow,
            // Empty EchelonFlows have zero tardiness, not -inf (same
            // contract as `echelon_tardiness`).
            max_tardiness: max_t.unwrap_or(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::ArrangementFn;
    use crate::echelon::FlowRef;
    use crate::{EchelonId, JobId};
    use echelon_simnet::ids::NodeId;

    fn fr(id: u64, size: f64) -> FlowRef {
        FlowRef::new(FlowId(id), NodeId(0), NodeId(1), size)
    }

    fn pipeline(reference: f64, gap: f64) -> EchelonFlow {
        let mut h = EchelonFlow::from_flows(
            EchelonId(0),
            JobId(0),
            vec![fr(0, 2.0), fr(1, 2.0), fr(2, 2.0)],
            ArrangementFn::Staggered { gap },
        );
        h.bind_reference(SimTime::new(reference));
        h
    }

    fn finishes(pairs: &[(u64, f64)]) -> BTreeMap<FlowId, SimTime> {
        pairs
            .iter()
            .map(|&(id, t)| (FlowId(id), SimTime::new(t)))
            .collect()
    }

    #[test]
    fn flow_tardiness_signed() {
        assert_eq!(flow_tardiness(SimTime::new(5.0), SimTime::new(3.0)), 2.0);
        assert_eq!(flow_tardiness(SimTime::new(2.0), SimTime::new(3.0)), -1.0);
    }

    #[test]
    fn echelon_tardiness_is_max() {
        // The paper's Fig. 2c schedule: r = 1, T = 1 → ideal 1, 2, 3;
        // serial full-rate transmission finishes at 3, 5, 7 → tardiness
        // 2, 3, 4; Eq. 2 gives 4.
        let h = pipeline(1.0, 1.0);
        let fin = finishes(&[(0, 3.0), (1, 5.0), (2, 7.0)]);
        assert!((echelon_tardiness(&h, &fin) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn partial_tardiness_tracks_finished_flows() {
        let h = pipeline(1.0, 1.0);
        let fin = finishes(&[(0, 3.0)]);
        assert_eq!(echelon_tardiness_partial(&h, &fin), Some(2.0));
        let none = finishes(&[]);
        assert_eq!(echelon_tardiness_partial(&h, &none), None);
    }

    #[test]
    fn coflow_tardiness_equals_cct() {
        // Property 2's arithmetic: with d_j = r for all flows, tardiness of
        // each flow is finish − r, so max tardiness = CCT measured from the
        // first flow's start.
        let mut h = EchelonFlow::from_flows(
            EchelonId(1),
            JobId(0),
            vec![fr(0, 1.0), fr(1, 1.0)],
            ArrangementFn::Coflow,
        );
        h.bind_reference(SimTime::new(2.0));
        let fin = finishes(&[(0, 5.0), (1, 6.0)]);
        assert!((echelon_tardiness(&h, &fin) - 4.0).abs() < 1e-9); // 6 − 2
    }

    #[test]
    fn total_tardiness_weights_and_clamps() {
        let h0 = pipeline(1.0, 1.0); // tardiness 4 with these finishes
        let mut h1 = EchelonFlow::from_flows(
            EchelonId(1),
            JobId(1),
            vec![fr(10, 1.0)],
            ArrangementFn::Coflow,
        )
        .with_weight(2.0);
        h1.bind_reference(SimTime::new(10.0));
        let mut fin = finishes(&[(0, 3.0), (1, 5.0), (2, 7.0)]);
        fin.insert(FlowId(10), SimTime::new(9.0)); // finished early: −1
        let total = total_tardiness(&[&h0, &h1], &fin);
        // h0 contributes 4, h1 clamps to 0 (not −2).
        assert!((total - 4.0).abs() < 1e-9);
    }

    #[test]
    fn report_lists_every_flow() {
        let h = pipeline(1.0, 1.0);
        let fin = finishes(&[(0, 3.0), (1, 5.0), (2, 7.0)]);
        let rep = TardinessReport::build(&h, &fin);
        assert_eq!(rep.per_flow.len(), 3);
        assert!((rep.max_tardiness - 4.0).abs() < 1e-9);
        assert_eq!(rep.per_flow[2].0, 2); // stage index
        assert!((rep.per_flow[2].4 - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no recorded finish")]
    fn missing_finish_panics() {
        let h = pipeline(1.0, 1.0);
        let fin = finishes(&[(0, 3.0)]);
        let _ = echelon_tardiness(&h, &fin);
    }

    /// Regression: an EchelonFlow with zero flows must not reach the
    /// tardiness math (where an empty max used to yield `-inf` and poison
    /// Eq. 4 aggregation) — the constructor rejects it outright.
    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_flow_set_rejected_by_constructor() {
        let _ = EchelonFlow::from_flows(EchelonId(0), JobId(0), Vec::new(), ArrangementFn::Coflow);
    }

    /// Regression: aggregating over zero EchelonFlows is 0.0, not `-inf`.
    #[test]
    fn total_tardiness_of_nothing_is_zero() {
        let fin = finishes(&[]);
        assert_eq!(total_tardiness(&[], &fin), 0.0);
    }
}
