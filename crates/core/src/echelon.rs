//! The [`EchelonFlow`] type (paper Definition 3.1).
//!
//! An EchelonFlow is declared *before* its flows start: the framework knows
//! the flow sizes, endpoints and the arrangement function from the training
//! paradigm and profiling (paper §5, Fig. 7). The **reference time** is
//! bound later, when the head flow actually starts — at that moment every
//! stage's ideal finish time becomes concrete, and stages whose flows start
//! late (because earlier flows were delayed) receive ideal finish times
//! *earlier* than their own start, giving them room to catch up and restore
//! the computation arrangement (the recalibration of §3.1 / Fig. 6b).

use crate::arrangement::ArrangementFn;
use crate::{EchelonId, JobId};
use echelon_simnet::ids::{FlowId, NodeId};
use echelon_simnet::time::SimTime;
use std::collections::BTreeMap;

/// A flow belonging to an EchelonFlow: identity, endpoints and size.
/// (Release time is dynamic — it is whenever the generating computation
/// finishes — so it is not part of the declaration.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowRef {
    /// Globally unique flow id.
    pub id: FlowId,
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Bytes to transfer.
    pub size: f64,
}

impl FlowRef {
    /// Creates a flow reference.
    ///
    /// # Panics
    ///
    /// Panics on non-positive size or coincident endpoints.
    pub fn new(id: FlowId, src: NodeId, dst: NodeId, size: f64) -> FlowRef {
        assert!(size > 0.0 && size.is_finite(), "flow size must be positive");
        assert!(src != dst, "flow endpoints coincide");
        FlowRef { id, src, dst, size }
    }
}

/// An EchelonFlow: stages of flows plus an arrangement function
/// (Definition 3.1), with an optionally bound reference time.
#[derive(Debug, Clone)]
pub struct EchelonFlow {
    id: EchelonId,
    job: JobId,
    weight: f64,
    stages: Vec<Vec<FlowRef>>,
    arrangement: ArrangementFn,
    reference: Option<SimTime>,
    /// Reverse index: flow id → stage index.
    stage_of: BTreeMap<FlowId, usize>,
}

impl EchelonFlow {
    /// Declares an EchelonFlow from its stages and arrangement function.
    ///
    /// Stages must be non-empty and flow ids unique across stages; the
    /// arrangement must be valid for the stage count.
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated.
    pub fn new(
        id: EchelonId,
        job: JobId,
        stages: Vec<Vec<FlowRef>>,
        arrangement: ArrangementFn,
    ) -> EchelonFlow {
        assert!(!stages.is_empty(), "EchelonFlow needs at least one stage");
        let mut stage_of = BTreeMap::new();
        for (j, stage) in stages.iter().enumerate() {
            assert!(!stage.is_empty(), "stage {j} is empty");
            for f in stage {
                let prev = stage_of.insert(f.id, j);
                assert!(prev.is_none(), "flow {} appears twice", f.id);
            }
        }
        // Validate the arrangement against the stage count eagerly.
        let _ = arrangement.offsets(stages.len());
        EchelonFlow {
            id,
            job,
            weight: 1.0,
            stages,
            arrangement,
            reference: None,
            stage_of,
        }
    }

    /// Single-flow-per-stage convenience constructor (pipeline shape).
    pub fn from_flows(
        id: EchelonId,
        job: JobId,
        flows: Vec<FlowRef>,
        arrangement: ArrangementFn,
    ) -> EchelonFlow {
        let stages = flows.into_iter().map(|f| vec![f]).collect();
        EchelonFlow::new(id, job, stages, arrangement)
    }

    /// Sets the weight used in the weighted global objective (Eq. 4).
    ///
    /// # Panics
    ///
    /// Panics on non-positive weight.
    pub fn with_weight(mut self, weight: f64) -> EchelonFlow {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "weight must be positive"
        );
        self.weight = weight;
        self
    }

    /// This EchelonFlow's id.
    pub fn id(&self) -> EchelonId {
        self.id
    }

    /// The job this EchelonFlow belongs to.
    pub fn job(&self) -> JobId {
        self.job
    }

    /// Weight in the global objective.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Total number of flows (the paper's cardinality `|H|` when every
    /// stage is a single flow).
    pub fn num_flows(&self) -> usize {
        self.stage_of.len()
    }

    /// The flows of stage `j`.
    pub fn stage(&self, j: usize) -> &[FlowRef] {
        &self.stages[j]
    }

    /// Iterator over all flows, stage by stage.
    pub fn flows(&self) -> impl Iterator<Item = &FlowRef> {
        self.stages.iter().flatten()
    }

    /// The stage a flow belongs to, if it is part of this EchelonFlow.
    pub fn stage_of(&self, flow: FlowId) -> Option<usize> {
        self.stage_of.get(&flow).copied()
    }

    /// `true` if the flow belongs to this EchelonFlow.
    pub fn contains(&self, flow: FlowId) -> bool {
        self.stage_of.contains_key(&flow)
    }

    /// The arrangement function.
    pub fn arrangement(&self) -> &ArrangementFn {
        &self.arrangement
    }

    /// Total bytes across all flows.
    pub fn total_bytes(&self) -> f64 {
        self.flows().map(|f| f.size).sum()
    }

    /// Binds the reference time `r` to the head flow's start time
    /// (Definition 3.1: `d_0 = r = s_0`). Idempotent only for the same
    /// time; rebinding to a different time panics — a new training
    /// iteration must declare a new EchelonFlow, which is how the job
    /// "recalibrates the computation arrangement whenever a new
    /// EchelonFlow is generated" (§3.1).
    pub fn bind_reference(&mut self, r: SimTime) {
        match self.reference {
            None => self.reference = Some(r),
            Some(prev) => assert!(
                prev.approx_eq(r),
                "reference time already bound to {prev:?}, cannot rebind to {r:?}"
            ),
        }
    }

    /// The bound reference time, if any.
    pub fn reference(&self) -> Option<SimTime> {
        self.reference
    }

    /// Ideal finish time of stage `j` (requires a bound reference).
    ///
    /// # Panics
    ///
    /// Panics if the reference time is unbound.
    pub fn ideal_finish_of_stage(&self, j: usize) -> SimTime {
        let r = self
            .reference
            .expect("reference time not bound; bind_reference first");
        r + self.arrangement.offset(j, self.stages.len())
    }

    /// Ideal finish time of a flow (its stage's ideal finish).
    pub fn ideal_finish_of_flow(&self, flow: FlowId) -> Option<SimTime> {
        self.stage_of(flow).map(|j| self.ideal_finish_of_stage(j))
    }

    /// The full ideal-finish-time table `D` (Definition 3.1), one entry
    /// per stage.
    pub fn ideal_finishes(&self) -> Vec<SimTime> {
        (0..self.stages.len())
            .map(|j| self.ideal_finish_of_stage(j))
            .collect()
    }

    /// `true` when the arrangement degenerates to a Coflow (all stages
    /// share one ideal finish time) — the Property 2 condition.
    pub fn is_coflow_compliant(&self) -> bool {
        self.arrangement.is_coflow(self.stages.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fr(id: u64, src: u32, dst: u32, size: f64) -> FlowRef {
        FlowRef::new(FlowId(id), NodeId(src), NodeId(dst), size)
    }

    fn pipeline_echelon() -> EchelonFlow {
        EchelonFlow::from_flows(
            EchelonId(0),
            JobId(0),
            vec![fr(0, 0, 1, 2.0), fr(1, 0, 1, 2.0), fr(2, 0, 1, 2.0)],
            ArrangementFn::Staggered { gap: 1.0 },
        )
    }

    #[test]
    fn construction_and_lookup() {
        let h = pipeline_echelon();
        assert_eq!(h.num_stages(), 3);
        assert_eq!(h.num_flows(), 3);
        assert_eq!(h.stage_of(FlowId(1)), Some(1));
        assert_eq!(h.stage_of(FlowId(9)), None);
        assert!(h.contains(FlowId(2)));
        assert_eq!(h.total_bytes(), 6.0);
        assert_eq!(h.weight(), 1.0);
    }

    #[test]
    fn ideal_finishes_follow_arrangement() {
        // The paper's Fig. 6b: reference r = 1, gaps of T = 1 give ideal
        // finishes d = 1, 2, 3.
        let mut h = pipeline_echelon();
        h.bind_reference(SimTime::new(1.0));
        let d = h.ideal_finishes();
        assert!(d[0].approx_eq(SimTime::new(1.0)));
        assert!(d[1].approx_eq(SimTime::new(2.0)));
        assert!(d[2].approx_eq(SimTime::new(3.0)));
        assert_eq!(
            h.ideal_finish_of_flow(FlowId(2)).unwrap(),
            h.ideal_finish_of_stage(2)
        );
    }

    #[test]
    fn multi_flow_stages_share_ideal_finish() {
        // FSDP shape: two coflow stages of two flows each.
        let mut h = EchelonFlow::new(
            EchelonId(1),
            JobId(0),
            vec![
                vec![fr(0, 0, 1, 1.0), fr(1, 1, 0, 1.0)],
                vec![fr(2, 0, 1, 1.0), fr(3, 1, 0, 1.0)],
            ],
            ArrangementFn::Staggered { gap: 2.0 },
        );
        h.bind_reference(SimTime::ZERO);
        assert_eq!(
            h.ideal_finish_of_flow(FlowId(0)),
            h.ideal_finish_of_flow(FlowId(1))
        );
        assert!(h
            .ideal_finish_of_flow(FlowId(3))
            .unwrap()
            .approx_eq(SimTime::new(2.0)));
    }

    #[test]
    fn coflow_compliance_detection() {
        let c = EchelonFlow::from_flows(
            EchelonId(2),
            JobId(0),
            vec![fr(0, 0, 1, 1.0), fr(1, 0, 2, 1.0)],
            ArrangementFn::Coflow,
        );
        assert!(c.is_coflow_compliant());
        assert!(!pipeline_echelon().is_coflow_compliant());
    }

    #[test]
    fn rebinding_same_reference_is_idempotent() {
        let mut h = pipeline_echelon();
        h.bind_reference(SimTime::new(1.0));
        h.bind_reference(SimTime::new(1.0)); // fine
        assert_eq!(h.reference(), Some(SimTime::new(1.0)));
    }

    #[test]
    #[should_panic(expected = "cannot rebind")]
    fn rebinding_different_reference_panics() {
        let mut h = pipeline_echelon();
        h.bind_reference(SimTime::new(1.0));
        h.bind_reference(SimTime::new(2.0));
    }

    #[test]
    #[should_panic(expected = "reference time not bound")]
    fn ideal_finish_requires_binding() {
        let h = pipeline_echelon();
        let _ = h.ideal_finish_of_stage(0);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_flow_ids_rejected() {
        let _ = EchelonFlow::new(
            EchelonId(0),
            JobId(0),
            vec![vec![fr(0, 0, 1, 1.0)], vec![fr(0, 0, 1, 1.0)]],
            ArrangementFn::Coflow,
        );
    }

    #[test]
    #[should_panic(expected = "stage 1 is empty")]
    fn empty_stage_rejected() {
        let _ = EchelonFlow::new(
            EchelonId(0),
            JobId(0),
            vec![vec![fr(0, 0, 1, 1.0)], vec![]],
            ArrangementFn::Coflow,
        );
    }

    #[test]
    fn weight_builder() {
        let h = pipeline_echelon().with_weight(2.5);
        assert_eq!(h.weight(), 2.5);
    }
}
