//! Arrangement functions (paper §3.1-§3.2, Eqs. 5-7).
//!
//! An arrangement function captures the *shape* (which stage finishes in
//! what relation to which) and the *distance* (profiled computation
//! durations) of a training paradigm's computation pattern. Given the
//! EchelonFlow's reference time `r` (start time of the head flow), it
//! produces the ideal finish time of every stage:
//!
//! ```text
//! d_j = r + offset(j)
//! ```
//!
//! with `offset(0) = 0` always (the head flow's ideal finish time is its
//! start time — the paper's "zero transmission time in an infinitely fast
//! network" idealization).

/// The arrangement function of an EchelonFlow.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrangementFn {
    /// Eq. 5 — all stages share the reference time as ideal finish:
    /// `d_j = r`. This is the Coflow special case (Property 2) and covers
    /// DP-AllReduce, DP-PS and TP (Table 1).
    Coflow,
    /// Eq. 6 — pipeline parallelism: `d_0 = r`, `d_j = d_{j-1} + gap`,
    /// where `gap` is the profiled computation time `T` of one micro-batch.
    Staggered {
        /// Computation time of one pipeline unit (profiled `T`).
        gap: f64,
    },
    /// Eq. 7 — FSDP/ZeRO: the first `fwd_count` stages are spaced by the
    /// forward-layer computation time, the remaining stages by the
    /// backward-layer computation time.
    Phased {
        /// Profiled forward computation time per layer (`T_fwd`).
        fwd_gap: f64,
        /// Profiled backward computation time per layer (`T_bwd`).
        bwd_gap: f64,
        /// Number of forward stages (`n`, the layer count).
        fwd_count: usize,
    },
    /// General DAG-derived shape: explicit non-decreasing offsets from the
    /// reference time, `offset[0] == 0`. Covers reordered-pipeline
    /// variants (PipeDream-style 1F1B) whose gaps are not constant.
    Offsets(Vec<f64>),
}

impl ArrangementFn {
    /// Builds a general offsets arrangement, validating the invariants.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty, `offsets[0] != 0`, any offset is
    /// negative/non-finite, or offsets decrease.
    pub fn from_offsets(offsets: Vec<f64>) -> ArrangementFn {
        assert!(!offsets.is_empty(), "arrangement needs at least one stage");
        assert!(
            offsets[0].abs() < 1e-12,
            "head stage offset must be 0, got {}",
            offsets[0]
        );
        for w in offsets.windows(2) {
            assert!(
                w[1].is_finite() && w[1] >= w[0] - 1e-12,
                "offsets must be non-decreasing: {} then {}",
                w[0],
                w[1]
            );
        }
        ArrangementFn::Offsets(offsets)
    }

    /// The ideal-finish offset of stage `j` in an EchelonFlow of
    /// `num_stages` stages.
    ///
    /// # Panics
    ///
    /// Panics if `j >= num_stages`, or if the variant's own stage count
    /// disagrees with `num_stages` (e.g. an `Offsets` list that is too
    /// short, or a `Phased` whose `fwd_count` exceeds the stage count).
    pub fn offset(&self, j: usize, num_stages: usize) -> f64 {
        assert!(
            j < num_stages,
            "stage index {j} out of range ({num_stages} stages)"
        );
        match self {
            ArrangementFn::Coflow => 0.0,
            ArrangementFn::Staggered { gap } => {
                assert!(*gap >= 0.0 && gap.is_finite(), "bad gap {gap}");
                gap * j as f64
            }
            ArrangementFn::Phased {
                fwd_gap,
                bwd_gap,
                fwd_count,
            } => {
                assert!(
                    *fwd_count >= 1 && *fwd_count <= num_stages,
                    "fwd_count {fwd_count} out of range for {num_stages} stages"
                );
                if j < *fwd_count {
                    fwd_gap * j as f64
                } else {
                    fwd_gap * (*fwd_count as f64 - 1.0) + bwd_gap * (j + 1 - fwd_count) as f64
                }
            }
            ArrangementFn::Offsets(offs) => {
                assert_eq!(
                    offs.len(),
                    num_stages,
                    "offsets arrangement has {} stages, EchelonFlow has {num_stages}",
                    offs.len()
                );
                offs[j]
            }
        }
    }

    /// All offsets for an EchelonFlow of `num_stages` stages.
    pub fn offsets(&self, num_stages: usize) -> Vec<f64> {
        (0..num_stages)
            .map(|j| self.offset(j, num_stages))
            .collect()
    }

    /// `true` when every stage shares the head's ideal finish time, i.e.
    /// the EchelonFlow degenerates to a Coflow (Property 2's condition).
    pub fn is_coflow(&self, num_stages: usize) -> bool {
        self.offsets(num_stages).iter().all(|&o| o.abs() < 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coflow_offsets_all_zero() {
        let a = ArrangementFn::Coflow;
        assert_eq!(a.offsets(4), vec![0.0; 4]);
        assert!(a.is_coflow(4));
    }

    #[test]
    fn staggered_matches_eq6() {
        // Eq. 6 with T = 1.5: d_j = r + 1.5 j.
        let a = ArrangementFn::Staggered { gap: 1.5 };
        assert_eq!(a.offsets(4), vec![0.0, 1.5, 3.0, 4.5]);
        assert!(!a.is_coflow(4));
    }

    #[test]
    fn staggered_zero_gap_degenerates_to_coflow() {
        let a = ArrangementFn::Staggered { gap: 0.0 };
        assert!(a.is_coflow(5));
    }

    #[test]
    fn phased_matches_eq7() {
        // Eq. 7 with n = 3 layers, T_fwd = 1, T_bwd = 2, 2n = 6 stages:
        // forward stages at 0, 1, 2; backward at 4, 6, 8.
        let a = ArrangementFn::Phased {
            fwd_gap: 1.0,
            bwd_gap: 2.0,
            fwd_count: 3,
        };
        assert_eq!(a.offsets(6), vec![0.0, 1.0, 2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn phased_single_forward_stage() {
        let a = ArrangementFn::Phased {
            fwd_gap: 1.0,
            bwd_gap: 3.0,
            fwd_count: 1,
        };
        assert_eq!(a.offsets(3), vec![0.0, 3.0, 6.0]);
    }

    #[test]
    fn explicit_offsets_pass_through() {
        let a = ArrangementFn::from_offsets(vec![0.0, 0.5, 0.5, 2.0]);
        assert_eq!(a.offset(3, 4), 2.0);
        assert!(!a.is_coflow(4));
    }

    #[test]
    #[should_panic(expected = "head stage offset")]
    fn offsets_must_start_at_zero() {
        let _ = ArrangementFn::from_offsets(vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn offsets_must_not_decrease() {
        let _ = ArrangementFn::from_offsets(vec![0.0, 2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn stage_index_bounds_checked() {
        let a = ArrangementFn::Coflow;
        let _ = a.offset(4, 4);
    }

    #[test]
    #[should_panic(expected = "offsets arrangement has")]
    fn offsets_length_must_match() {
        let a = ArrangementFn::from_offsets(vec![0.0, 1.0]);
        let _ = a.offset(0, 3);
    }
}
